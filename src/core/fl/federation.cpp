#include "core/fl/federation.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "core/codec_spec.hpp"
#include "core/fl/checkpoint.hpp"
#include "data/synthetic.hpp"
#include "net/bandwidth.hpp"
#include "util/bytebuffer.hpp"
#include "util/timer.hpp"

namespace fedsz::core {

namespace {

using Clock = std::chrono::steady_clock;

ByteSpan view(const Bytes& bytes) { return {bytes.data(), bytes.size()}; }

// ---- field-group (de)serializers shared by the manifest and PARTIAL ----

void put_profile(ByteWriter& out, const net::NetworkProfile& profile) {
  out.put_f64(profile.bandwidth_mbps);
  out.put_f64(profile.latency_s);
}

net::NetworkProfile get_profile(ByteReader& in) {
  net::NetworkProfile profile;
  profile.bandwidth_mbps = in.get_f64();
  profile.latency_s = in.get_f64();
  return profile;
}

void put_heterogeneous(
    ByteWriter& out,
    const std::optional<net::HeterogeneousNetworkConfig>& config) {
  out.put_u8(config ? 1 : 0);
  if (!config) return;
  out.put_u8(static_cast<std::uint8_t>(config->distribution));
  out.put_f64(config->edge_min_mbps);
  out.put_f64(config->edge_max_mbps);
  out.put_f64(config->wan_median_mbps);
  out.put_f64(config->wan_log_sigma);
  out.put_f64(config->two_tier_fast_fraction);
  out.put_f64(config->two_tier_fast_mbps);
  out.put_f64(config->two_tier_slow_mbps);
  out.put_f64(config->latency_s);
  out.put_u64(config->seed);
}

std::optional<net::HeterogeneousNetworkConfig> get_heterogeneous(
    ByteReader& in) {
  const std::uint8_t present = in.get_u8();
  if (present > 1)
    throw CorruptStream("manifest: bad heterogeneous-config flag");
  if (present == 0) return std::nullopt;
  net::HeterogeneousNetworkConfig config;
  config.distribution = static_cast<net::LinkDistribution>(in.get_u8());
  config.edge_min_mbps = in.get_f64();
  config.edge_max_mbps = in.get_f64();
  config.wan_median_mbps = in.get_f64();
  config.wan_log_sigma = in.get_f64();
  config.two_tier_fast_fraction = in.get_f64();
  config.two_tier_fast_mbps = in.get_f64();
  config.two_tier_slow_mbps = in.get_f64();
  config.latency_s = in.get_f64();
  config.seed = in.get_u64();
  return config;
}

void put_stats(ByteWriter& out, const CompressionStats& stats) {
  out.put_varint(stats.original_bytes);
  out.put_varint(stats.compressed_bytes);
  out.put_varint(stats.lossy_original_bytes);
  out.put_varint(stats.lossy_compressed_bytes);
  out.put_varint(stats.lossless_original_bytes);
  out.put_varint(stats.lossless_compressed_bytes);
  out.put_varint(stats.raw_original_bytes);
  out.put_varint(stats.lossy_tensors);
  out.put_varint(stats.lossless_tensors);
  out.put_varint(stats.raw_tensors);
  out.put_varint(stats.lossy_chunks);
  out.put_f64(stats.mean_bound_value);
  out.put_f64(stats.compress_seconds);
  out.put_f64(stats.decompress_seconds);
}

CompressionStats get_stats(ByteReader& in) {
  CompressionStats stats;
  stats.original_bytes = static_cast<std::size_t>(in.get_varint());
  stats.compressed_bytes = static_cast<std::size_t>(in.get_varint());
  stats.lossy_original_bytes = static_cast<std::size_t>(in.get_varint());
  stats.lossy_compressed_bytes = static_cast<std::size_t>(in.get_varint());
  stats.lossless_original_bytes = static_cast<std::size_t>(in.get_varint());
  stats.lossless_compressed_bytes = static_cast<std::size_t>(in.get_varint());
  stats.raw_original_bytes = static_cast<std::size_t>(in.get_varint());
  stats.lossy_tensors = static_cast<std::size_t>(in.get_varint());
  stats.lossless_tensors = static_cast<std::size_t>(in.get_varint());
  stats.raw_tensors = static_cast<std::size_t>(in.get_varint());
  stats.lossy_chunks = static_cast<std::size_t>(in.get_varint());
  stats.mean_bound_value = in.get_f64();
  stats.compress_seconds = in.get_f64();
  stats.decompress_seconds = in.get_f64();
  return stats;
}

// ---- PARTIAL payload ----

/// One client delivery as shipped inside a PARTIAL frame. `pos` is the
/// client's dispatch position WITHIN the edge cohort; the root adds the
/// edge's global offset, which turns (arrival, upload, global pos) into
/// exactly the in-process event queue's (time, tie-break) order.
struct WireClientTrace {
  std::size_t client = 0;
  std::size_t pos = 0;
  double upload_seconds = 0.0;
  double arrival_seconds = 0.0;
  double transfer_seconds = 0.0;
  double weight = 0.0;
  std::size_t payload_bytes = 0;
  std::size_t raw_bytes = 0;
  double bound_value = 0.0;
  std::size_t lossy_tensors = 0;
  std::size_t lossless_tensors = 0;
  std::size_t raw_tensors = 0;
  double ef_residual_norm = 0.0;
  double train_seconds = 0.0;
  double mean_loss = 0.0;
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;  // edge-side update decode (wall)
  double ef_decode_seconds = 0.0;
};

/// A worker's whole round result: the re-encoded partial plus the ordering
/// keys the root needs to replay the virtual schedule (ship time = the
/// last fold's arrival; the last fold's own key breaks root-side ties the
/// way event-scheduling order would have).
struct WirePartial {
  int round = 0;
  double ship_seconds = 0.0;
  double last_upload_seconds = 0.0;
  std::size_t last_pos = 0;
  Bytes payload;
  double weight = 0.0;
  std::size_t clients = 0;
  double ef_residual_norm = 0.0;
  CompressionStats stats;
  std::vector<WireClientTrace> traces;  // in edge fold order
};

Bytes serialize_partial(const WirePartial& partial) {
  ByteWriter out;
  out.put_varint(static_cast<std::uint64_t>(partial.round));
  out.put_f64(partial.ship_seconds);
  out.put_f64(partial.last_upload_seconds);
  out.put_varint(partial.last_pos);
  out.put_blob(view(partial.payload));
  out.put_f64(partial.weight);
  out.put_varint(partial.clients);
  out.put_f64(partial.ef_residual_norm);
  put_stats(out, partial.stats);
  out.put_varint(partial.traces.size());
  for (const WireClientTrace& t : partial.traces) {
    out.put_varint(t.client);
    out.put_varint(t.pos);
    out.put_f64(t.upload_seconds);
    out.put_f64(t.arrival_seconds);
    out.put_f64(t.transfer_seconds);
    out.put_f64(t.weight);
    out.put_varint(t.payload_bytes);
    out.put_varint(t.raw_bytes);
    out.put_f64(t.bound_value);
    out.put_varint(t.lossy_tensors);
    out.put_varint(t.lossless_tensors);
    out.put_varint(t.raw_tensors);
    out.put_f64(t.ef_residual_norm);
    out.put_f64(t.train_seconds);
    out.put_f64(t.mean_loss);
    out.put_f64(t.compress_seconds);
    out.put_f64(t.decompress_seconds);
    out.put_f64(t.ef_decode_seconds);
  }
  return out.finish();
}

WirePartial parse_partial(ByteSpan bytes) {
  try {
    ByteReader in(bytes);
    WirePartial partial;
    partial.round = static_cast<int>(in.get_varint());
    partial.ship_seconds = in.get_f64();
    partial.last_upload_seconds = in.get_f64();
    partial.last_pos = static_cast<std::size_t>(in.get_varint());
    const ByteSpan payload = in.get_blob_view();
    partial.payload.assign(payload.begin(), payload.end());
    partial.weight = in.get_f64();
    partial.clients = static_cast<std::size_t>(in.get_varint());
    partial.ef_residual_norm = in.get_f64();
    partial.stats = get_stats(in);
    const std::uint64_t count = in.get_varint();
    if (count > in.remaining())
      throw CorruptStream("federation: trace count exceeds the payload");
    partial.traces.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t k = 0; k < count; ++k) {
      WireClientTrace t;
      t.client = static_cast<std::size_t>(in.get_varint());
      t.pos = static_cast<std::size_t>(in.get_varint());
      t.upload_seconds = in.get_f64();
      t.arrival_seconds = in.get_f64();
      t.transfer_seconds = in.get_f64();
      t.weight = in.get_f64();
      t.payload_bytes = static_cast<std::size_t>(in.get_varint());
      t.raw_bytes = static_cast<std::size_t>(in.get_varint());
      t.bound_value = in.get_f64();
      t.lossy_tensors = static_cast<std::size_t>(in.get_varint());
      t.lossless_tensors = static_cast<std::size_t>(in.get_varint());
      t.raw_tensors = static_cast<std::size_t>(in.get_varint());
      t.ef_residual_norm = in.get_f64();
      t.train_seconds = in.get_f64();
      t.mean_loss = in.get_f64();
      t.compress_seconds = in.get_f64();
      t.decompress_seconds = in.get_f64();
      t.ef_decode_seconds = in.get_f64();
      partial.traces.push_back(t);
    }
    if (!in.done())
      throw CorruptStream("federation: trailing bytes after PARTIAL");
    return partial;
  } catch (const CorruptStream&) {
    throw;
  } catch (const std::exception& error) {
    throw CorruptStream(std::string("federation: bad PARTIAL: ") +
                        error.what());
  }
}

// ---- ROUND_OPEN payload ----

struct RoundOpenMsg {
  int round = 0;
  double t_open = 0.0;
  std::vector<std::size_t> cohort;  // global client ids, dispatch order
};

Bytes serialize_round_open(const RoundOpenMsg& msg) {
  ByteWriter out;
  out.put_varint(static_cast<std::uint64_t>(msg.round));
  out.put_f64(msg.t_open);
  out.put_varint(msg.cohort.size());
  for (const std::size_t i : msg.cohort) out.put_varint(i);
  return out.finish();
}

RoundOpenMsg parse_round_open(ByteSpan bytes, std::size_t clients) {
  try {
    ByteReader in(bytes);
    RoundOpenMsg msg;
    msg.round = static_cast<int>(in.get_varint());
    msg.t_open = in.get_f64();
    const std::uint64_t count = in.get_varint();
    if (count > in.remaining())
      throw CorruptStream("federation: cohort count exceeds the payload");
    msg.cohort.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t k = 0; k < count; ++k) {
      const std::uint64_t id = in.get_varint();
      if (id >= clients)
        throw CorruptStream("federation: cohort client id out of range");
      msg.cohort.push_back(static_cast<std::size_t>(id));
    }
    if (!in.done())
      throw CorruptStream("federation: trailing bytes after ROUND_OPEN");
    return msg;
  } catch (const CorruptStream&) {
    throw;
  } catch (const std::exception& error) {
    throw CorruptStream(std::string("federation: bad ROUND_OPEN: ") +
                        error.what());
  }
}

}  // namespace

// ---- manifest ----

Bytes serialize_manifest(const RunManifest& manifest) {
  ByteWriter out;
  out.put_string(manifest.codec_spec);
  out.put_string(manifest.dataset.name);
  out.put_u64(manifest.dataset.seed);
  out.put_varint(manifest.dataset.take);
  out.put_string(manifest.model.arch);
  out.put_varint(static_cast<std::uint64_t>(manifest.model.in_channels));
  out.put_varint(static_cast<std::uint64_t>(manifest.model.image_size));
  out.put_varint(static_cast<std::uint64_t>(manifest.model.num_classes));
  out.put_u8(static_cast<std::uint8_t>(manifest.model.scale));
  out.put_u64(manifest.model.seed);
  out.put_varint(manifest.clients);
  out.put_varint(static_cast<std::uint64_t>(manifest.rounds));
  out.put_u64(manifest.seed);
  out.put_f32(manifest.client.sgd.learning_rate);
  out.put_f32(manifest.client.sgd.momentum);
  out.put_f32(manifest.client.sgd.weight_decay);
  out.put_varint(manifest.client.batch_size);
  out.put_varint(static_cast<std::uint64_t>(manifest.client.local_epochs));
  put_profile(out, manifest.network);
  put_heterogeneous(out, manifest.heterogeneous);
  out.put_f64(manifest.compute_seconds_per_sample);
  out.put_f64(manifest.compute_jitter);
  put_profile(out, manifest.backhaul_network);
  put_heterogeneous(out, manifest.backhaul_heterogeneous);
  out.put_u64(manifest.shard_seed);
  out.put_u32(manifest.edge);
  out.put_u32(manifest.edges);
  out.put_f64(manifest.heartbeat_interval_seconds);
  out.put_u32(manifest.fingerprint);
  return out.finish();
}

RunManifest parse_manifest(ByteSpan bytes) {
  try {
    ByteReader in(bytes);
    RunManifest m;
    m.codec_spec = in.get_string();
    m.dataset.name = in.get_string();
    m.dataset.seed = in.get_u64();
    m.dataset.take = static_cast<std::size_t>(in.get_varint());
    m.model.arch = in.get_string();
    m.model.in_channels = static_cast<int>(in.get_varint());
    m.model.image_size = static_cast<int>(in.get_varint());
    m.model.num_classes = static_cast<int>(in.get_varint());
    m.model.scale = static_cast<nn::ModelScale>(in.get_u8());
    m.model.seed = in.get_u64();
    m.clients = static_cast<std::size_t>(in.get_varint());
    m.rounds = static_cast<int>(in.get_varint());
    m.seed = in.get_u64();
    m.client.sgd.learning_rate = in.get_f32();
    m.client.sgd.momentum = in.get_f32();
    m.client.sgd.weight_decay = in.get_f32();
    m.client.batch_size = static_cast<std::size_t>(in.get_varint());
    m.client.local_epochs = static_cast<int>(in.get_varint());
    m.network = get_profile(in);
    m.heterogeneous = get_heterogeneous(in);
    m.compute_seconds_per_sample = in.get_f64();
    m.compute_jitter = in.get_f64();
    m.backhaul_network = get_profile(in);
    m.backhaul_heterogeneous = get_heterogeneous(in);
    m.shard_seed = in.get_u64();
    m.edge = in.get_u32();
    m.edges = in.get_u32();
    m.heartbeat_interval_seconds = in.get_f64();
    m.fingerprint = in.get_u32();
    if (!in.done())
      throw CorruptStream("manifest: trailing bytes after the manifest");
    return m;
  } catch (const CorruptStream&) {
    throw;
  } catch (const std::exception& error) {
    throw CorruptStream(std::string("manifest: ") + error.what());
  }
}

// ---- edge worker ----

namespace {

/// The worker's rebuilt slice of the run: the same deterministic
/// derivations the in-process coordinator constructor performs (dataset,
/// IID shards, per-client compute budgets, per-client links, codecs),
/// minus everything server-side. Clients materialize lazily — with crash
/// re-homing a worker can be asked to train ANY client, but usually only
/// its own shard.
struct EdgeRuntime {
  RunManifest manifest;
  FlRunConfig config;
  UpdateCodecPtr codec;
  bool ef_on = false;
  std::unique_ptr<AggregationTree> tree;
  std::unique_ptr<ClientPopulation> population;  // before network: links
  net::HeterogeneousNetwork network;
  data::DatasetPtr train;
  std::vector<std::vector<std::size_t>> shards;
  std::vector<double> compute_seconds;
  std::vector<std::unique_ptr<FlClient>> clients;  // lazy, index = id
  std::vector<ErrorFeedbackAccumulator> feedback;

  explicit EdgeRuntime(RunManifest m)
      : manifest(std::move(m)),
        config(config_from(manifest)),
        codec(make_codec(parse_codec_spec(manifest.codec_spec))),
        ef_on(config.error_feedback && !codec->lossless()),
        tree(std::make_unique<AggregationTree>(config.topology,
                                               config.clients)),
        population(config.population.empty()
                       ? nullptr
                       : std::make_unique<ClientPopulation>(
                             config.population, config.clients, config.seed)),
        network(build_population_network(config, population.get())),
        train(build_train(manifest.dataset)) {
    if (manifest.edge >= tree->edge_count())
      throw CorruptStream("manifest: edge index out of range");
    shards = build_client_shards(*train, config, population.get());
    Rng speed_rng(config.seed ^ 0xC0DEC10Cull);
    compute_seconds.reserve(config.clients);
    for (std::size_t i = 0; i < config.clients; ++i) {
      const double factor = speed_rng.uniform(1.0 - config.compute_jitter,
                                              1.0 + config.compute_jitter);
      const double class_multiplier =
          population ? population->compute_multiplier(i) : 1.0;
      compute_seconds.push_back(
          config.compute_seconds_per_sample *
          static_cast<double>(shards[i].size()) *
          static_cast<double>(config.client.local_epochs) * factor *
          class_multiplier);
    }
    clients.resize(config.clients);
    feedback.resize(config.clients);
  }

  static data::DatasetPtr build_train(const DatasetSpec& dataset) {
    data::DatasetPtr train =
        data::make_dataset(dataset.name, dataset.seed).first;
    if (dataset.take > 0) train = data::take(train, dataset.take);
    return train;
  }

  static FlRunConfig config_from(const RunManifest& m) {
    FlRunConfig config;
    config.apply_comm_spec(parse_codec_spec(m.codec_spec));
    config.clients = m.clients;
    config.rounds = m.rounds;
    config.seed = m.seed;
    config.client = m.client;
    config.network = m.network;
    config.heterogeneous = m.heterogeneous;
    config.compute_seconds_per_sample = m.compute_seconds_per_sample;
    config.compute_jitter = m.compute_jitter;
    config.topology.backhaul_network = m.backhaul_network;
    config.topology.backhaul_heterogeneous = m.backhaul_heterogeneous;
    config.topology.shard_seed = m.shard_seed;
    config.validate();
    return config;
  }

  FlClient& client(std::size_t i) {
    if (!clients[i]) {
      ClientConfig client_config = config.client;
      client_config.seed = config.seed ^ (0xC11E47ull * (i + 1));
      clients[i] = std::make_unique<FlClient>(
          static_cast<int>(i), manifest.model,
          std::make_shared<data::SubsetDataset>(train, shards[i]),
          client_config);
    }
    return *clients[i];
  }
};

/// Run one cohort: train every client serially (training is deterministic
/// per client, so serial vs pooled changes nothing but wall time), compute
/// each update's virtual upload/arrival analytically, then fold in the
/// exact order the in-process event queue would have processed the
/// arrivals — (arrival time, upload time, dispatch position).
WirePartial process_round(EdgeRuntime& rt, const RoundOpenMsg& open,
                          const StateDict& global) {
  struct Produced {
    std::size_t client = 0;
    std::size_t pos = 0;
    Bytes payload;
    std::size_t samples = 0;
    CompressionStats stats;
    double train_seconds = 0.0;
    double mean_loss = 0.0;
    double ef_residual_norm = 0.0;
    double ef_decode_seconds = 0.0;
    double upload = 0.0;
    double transfer = 0.0;
    double arrival = 0.0;
  };
  std::vector<Produced> produced;
  produced.reserve(open.cohort.size());
  for (std::size_t pos = 0; pos < open.cohort.size(); ++pos) {
    const std::size_t i = open.cohort[pos];
    Produced p;
    p.client = i;
    p.pos = pos;
    ClientRoundResult round_result = rt.client(i).run_round(global);
    EncodeContext ctx;
    ctx.round = open.round;
    ctx.client_id = static_cast<int>(i);
    ctx.steps = round_result.steps;
    StateDict update = std::move(round_result.update);
    if (rt.ef_on) update = rt.feedback[i].apply(update);
    UpdateCodec::Encoded encoded = rt.codec->encode(update, ctx);
    if (rt.ef_on) {
      CompressionStats ef_stats;
      const StateDict reconstruction = rt.codec->decode(
          {encoded.payload.data(), encoded.payload.size()}, &ef_stats);
      rt.feedback[i].absorb(update, reconstruction);
      p.ef_residual_norm = rt.feedback[i].residual_norm();
      p.ef_decode_seconds = ef_stats.decompress_seconds;
    }
    p.samples = round_result.samples;
    p.stats = encoded.stats;
    p.train_seconds = round_result.train_seconds;
    p.mean_loss = round_result.mean_loss;
    p.payload = std::move(encoded.payload);
    p.upload = open.t_open + rt.compute_seconds[i];
    p.transfer = rt.network.link(i).transfer_seconds(p.payload.size());
    p.arrival = p.upload + p.transfer;
    produced.push_back(std::move(p));
  }

  std::vector<std::size_t> order(produced.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Produced& x = produced[a];
    const Produced& y = produced[b];
    if (x.arrival != y.arrival) return x.arrival < y.arrival;
    if (x.upload != y.upload) return x.upload < y.upload;
    return x.pos < y.pos;
  });

  EdgeAggregator& edge = rt.tree->node(0, rt.manifest.edge);
  edge.begin_round(global);
  WirePartial wire;
  wire.round = open.round;
  wire.traces.reserve(produced.size());
  for (const std::size_t k : order) {
    Produced& p = produced[k];
    CompressionStats decode_stats;
    StateDict update =
        rt.codec->decode(view(p.payload), &decode_stats);
    // Barrier schedulers fold in-round, so the staleness scale is 1 and
    // the aggregation weight is the bare sample count.
    const double weight = static_cast<double>(p.samples);
    edge.fold(update, weight);
    WireClientTrace t;
    t.client = p.client;
    t.pos = p.pos;
    t.upload_seconds = p.upload;
    t.arrival_seconds = p.arrival;
    t.transfer_seconds = p.transfer;
    t.weight = weight;
    t.payload_bytes = p.payload.size();
    t.raw_bytes = p.stats.original_bytes;
    t.bound_value = p.stats.mean_bound_value;
    t.lossy_tensors = p.stats.lossy_tensors;
    t.lossless_tensors = p.stats.lossless_tensors;
    t.raw_tensors = p.stats.raw_tensors;
    t.ef_residual_norm = p.ef_residual_norm;
    t.train_seconds = p.train_seconds;
    t.mean_loss = p.mean_loss;
    t.compress_seconds = p.stats.compress_seconds;
    t.decompress_seconds = decode_stats.decompress_seconds;
    t.ef_decode_seconds = p.ef_decode_seconds;
    wire.traces.push_back(t);
  }

  EncodedPartial partial = edge.finalize_and_encode(open.round);
  const Produced& last = produced[order.back()];
  wire.ship_seconds = last.arrival;
  wire.last_upload_seconds = last.upload;
  wire.last_pos = last.pos;
  wire.payload = std::move(partial.payload);
  wire.weight = partial.weight;
  wire.clients = partial.clients;
  wire.ef_residual_norm = partial.ef_residual_norm;
  wire.stats = partial.stats;
  return wire;
}

}  // namespace

void run_edge_worker(net::StreamPtr stream) {
  net::FrameChannel chan(std::move(stream));
  std::optional<net::Frame> hello = chan.recv();
  if (!hello) throw net::TransportError("federation: peer closed before HELLO");
  if (hello->type != net::FrameType::kHello)
    throw CorruptStream("federation: expected HELLO, got " +
                        net::frame_type_name(hello->type));
  EdgeRuntime rt(parse_manifest(view(hello->payload)));

  ByteWriter ack;
  ack.put_u32(rt.manifest.fingerprint);
  ack.put_varint(rt.manifest.edge);
  const Bytes ack_bytes = ack.finish();
  chan.send(net::FrameType::kAck, view(ack_bytes));

  // Liveness beacon on the WALL clock (the root's crash detector is about
  // real processes, not the simulation). FrameChannel::send serializes
  // with the round loop's PARTIAL sends.
  std::mutex beat_mutex;
  std::condition_variable beat_cv;
  bool beat_stop = false;
  const auto interval = std::chrono::duration<double>(
      std::max(0.01, rt.manifest.heartbeat_interval_seconds));
  std::thread heartbeat([&] {
    std::unique_lock<std::mutex> lock(beat_mutex);
    while (!beat_cv.wait_for(lock, interval, [&] { return beat_stop; })) {
      lock.unlock();
      try {
        chan.send(net::FrameType::kHeartbeat, ByteSpan{});
      } catch (const std::exception&) {
        lock.lock();
        break;
      }
      lock.lock();
    }
  });
  auto stop_heartbeat = [&] {
    {
      std::lock_guard<std::mutex> lock(beat_mutex);
      beat_stop = true;
    }
    beat_cv.notify_all();
    if (heartbeat.joinable()) heartbeat.join();
  };

  try {
    std::optional<RoundOpenMsg> pending;
    while (std::optional<net::Frame> frame = chan.recv()) {
      switch (frame->type) {
        case net::FrameType::kRoundOpen:
          pending = parse_round_open(view(frame->payload), rt.config.clients);
          break;
        case net::FrameType::kBroadcast: {
          ByteReader in(view(frame->payload));
          const int round = static_cast<int>(in.get_varint());
          const StateDict global = StateDict::deserialize(in.get_blob_view());
          if (!pending || pending->round != round)
            throw CorruptStream(
                "federation: BROADCAST without a matching ROUND_OPEN");
          const Bytes out = serialize_partial(
              process_round(rt, *pending, global));
          chan.send(net::FrameType::kPartial, view(out));
          pending.reset();
          break;
        }
        case net::FrameType::kBye:
          stop_heartbeat();
          chan.close();
          return;
        default:
          throw CorruptStream("federation: unexpected " +
                              net::frame_type_name(frame->type) + " frame");
      }
    }
  } catch (...) {
    stop_heartbeat();
    chan.close();
    throw;
  }
  // EOF without BYE: the root vanished; exit quietly (it already has — or
  // never will collect — everything this worker produced).
  stop_heartbeat();
  chan.close();
}

// ---- root ----

struct FederatedRoot::Impl {
  nn::ModelConfig model_config;
  DatasetSpec train_spec;
  data::DatasetPtr test;
  FlRunConfig config;  // shard_seed resolved
  std::string spec_string;
  SchedulerPtr scheduler;
  FederationOptions options;
  FlServer server;
  std::unique_ptr<ClientPopulation> population;  // before network: links
  net::HeterogeneousNetwork network;  // client links (Eqn-1 decisions)
  std::unique_ptr<AggregationTree> tree;
  std::unique_ptr<net::TcpListener> listener;
  std::uint32_t fingerprint = 0;

  Impl(const nn::ModelConfig& model, DatasetSpec train, data::DatasetPtr t,
       FlRunConfig cfg, SchedulerPtr sched, FederationOptions opts)
      : model_config(model),
        train_spec(std::move(train)),
        test(std::move(t)),
        config(std::move(cfg)),
        scheduler(sched ? std::move(sched) : make_sync_scheduler()),
        options(opts),
        server(model),
        population(config.population.empty()
                       ? nullptr
                       : std::make_unique<ClientPopulation>(
                             config.population, config.clients, config.seed)),
        network(build_population_network(config, population.get())) {}

  RunManifest make_manifest(std::uint32_t edge) const {
    RunManifest m;
    m.codec_spec = spec_string;
    m.dataset = train_spec;
    m.model = model_config;
    m.clients = config.clients;
    m.rounds = config.rounds;
    m.seed = config.seed;
    m.client = config.client;
    m.network = config.network;
    m.heterogeneous = config.heterogeneous;
    m.compute_seconds_per_sample = config.compute_seconds_per_sample;
    m.compute_jitter = config.compute_jitter;
    m.backhaul_network = config.topology.backhaul_network;
    m.backhaul_heterogeneous = config.topology.backhaul_heterogeneous;
    m.shard_seed = config.topology.shard_seed;
    m.edge = edge;
    m.edges = static_cast<std::uint32_t>(tree->edge_count());
    m.heartbeat_interval_seconds = options.heartbeat_interval_seconds;
    m.fingerprint = fingerprint;
    return m;
  }
};

FederatedRoot::FederatedRoot(const nn::ModelConfig& model_config,
                             DatasetSpec train, data::DatasetPtr test,
                             FlRunConfig config, const CodecSpec& spec,
                             SchedulerPtr scheduler, FederationOptions options)
    : impl_(std::make_unique<Impl>(model_config, std::move(train),
                                   std::move(test), std::move(config),
                                   std::move(scheduler), options)) {
  Impl& impl = *impl_;
  impl.config.validate();
  impl.spec_string = format_codec_spec(spec);
  if (impl.config.topology.mode != TopologyMode::kHier ||
      impl.config.topology.resolved_tiers().size() != 1)
    throw InvalidArgument(
        "FederatedRoot: distributed runs need a single-tier hierarchy "
        "(topology=hier:<N>) -- one worker process per tier-1 edge");
  if (impl.scheduler->continuous())
    throw InvalidArgument(
        "FederatedRoot: distributed runs require a barrier scheduler "
        "(sync or sampled_sync)");
  if (!impl.config.downlink_spec.empty())
    throw InvalidArgument(
        "FederatedRoot: downlink compression is not distributed yet -- the "
        "broadcast ships lossless over the wire");
  if (!impl.config.failures.empty())
    throw InvalidArgument(
        "FederatedRoot: injected failure schedules are in-process only; "
        "distributed churn comes from real worker crashes (heartbeats)");
  if (impl.config.population.dropout_rate > 0.0)
    throw InvalidArgument(
        "FederatedRoot: population mid-round dropout is in-process only; "
        "remove drop= from population= when using transport=tcp");
  if (impl.config.topology.edge_mode != EdgeMode::kSync)
    throw InvalidArgument(
        "FederatedRoot: distributed edges are sync-only (a buffered edge "
        "would need late client arrivals crossing the wire)");
  if (!impl.config.checkpoint_path.empty())
    throw InvalidArgument(
        "FederatedRoot: checkpoint/resume is in-process only for now -- "
        "drop checkpoint= from the spec when using transport=tcp");
  if (impl.config.topology.sharding == ShardStrategy::kShuffled &&
      impl.config.topology.shard_seed == 0)
    impl.config.topology.shard_seed = impl.config.seed ^ 0x5A4DD00Dull;
  impl.tree = std::make_unique<AggregationTree>(impl.config.topology,
                                                impl.config.clients);
  edge_count_ = impl.tree->edge_count();
  impl.fingerprint = run_fingerprint(impl.config, impl.model_config);
  if (!impl.config.transport.empty()) {
    // "tcp:<port>" was validated by FlRunConfig::validate(); port 0 asks
    // the kernel, so bind NOW to make port() meaningful before run().
    const std::uint16_t port = static_cast<std::uint16_t>(
        std::stoul(impl.config.transport.substr(4)));
    impl.listener = std::make_unique<net::TcpListener>(port);
  }
}

FederatedRoot::~FederatedRoot() = default;

std::uint16_t FederatedRoot::port() const {
  if (!impl_->listener)
    throw InvalidArgument("FederatedRoot: no TCP listener (inproc streams)");
  return impl_->listener->port();
}

RunManifest FederatedRoot::manifest(std::uint32_t edge) const {
  if (edge >= edge_count_)
    throw InvalidArgument("FederatedRoot: edge index out of range");
  return impl_->make_manifest(edge);
}

FlRunResult FederatedRoot::run() {
  if (!impl_->listener)
    throw InvalidArgument(
        "FederatedRoot: run() needs transport=tcp:<port>; use "
        "run_with_streams() for caller-managed streams");
  std::vector<net::StreamPtr> streams;
  streams.reserve(edge_count_);
  for (std::size_t e = 0; e < edge_count_; ++e)
    streams.push_back(impl_->listener->accept());
  return run_with_streams(std::move(streams));
}

namespace {

/// One worker connection as the root sees it: its channel, the thread
/// draining its frames into the shared inbox, and liveness bookkeeping.
struct Conn {
  std::unique_ptr<net::FrameChannel> chan;
  std::thread reader;
  bool alive = true;
  Clock::time_point last_seen{};
};

struct InboxEvent {
  std::size_t edge = 0;
  std::optional<net::Frame> frame;  // nullopt = disconnect/EOF
  std::string error;
};

}  // namespace

FlRunResult FederatedRoot::run_with_streams(
    std::vector<net::StreamPtr> streams) {
  Impl& impl = *impl_;
  const std::size_t edges = edge_count_;
  if (streams.size() != edges)
    throw InvalidArgument("FederatedRoot: got " +
                          std::to_string(streams.size()) + " streams for " +
                          std::to_string(edges) + " edges");

  Timer wall;
  std::mutex inbox_mutex;
  std::condition_variable inbox_cv;
  std::deque<InboxEvent> inbox;
  std::vector<Conn> conns(edges);

  auto push_event = [&](InboxEvent event) {
    {
      std::lock_guard<std::mutex> lock(inbox_mutex);
      inbox.push_back(std::move(event));
    }
    inbox_cv.notify_all();
  };
  auto wait_event =
      [&](std::chrono::milliseconds timeout) -> std::optional<InboxEvent> {
    std::unique_lock<std::mutex> lock(inbox_mutex);
    if (!inbox_cv.wait_for(lock, timeout, [&] { return !inbox.empty(); }))
      return std::nullopt;
    InboxEvent event = std::move(inbox.front());
    inbox.pop_front();
    return event;
  };

  auto shutdown = [&] {
    for (Conn& conn : conns) {
      if (conn.chan) conn.chan->close();
      if (conn.reader.joinable()) conn.reader.join();
    }
  };

  try {
    const auto start = Clock::now();
    for (std::size_t e = 0; e < edges; ++e) {
      conns[e].chan = std::make_unique<net::FrameChannel>(streams[e]);
      conns[e].last_seen = start;
      const Bytes hello = serialize_manifest(
          impl.make_manifest(static_cast<std::uint32_t>(e)));
      conns[e].chan->send(net::FrameType::kHello, view(hello));
      conns[e].reader = std::thread([&, e] {
        try {
          while (std::optional<net::Frame> frame = conns[e].chan->recv()) {
            const bool beat = frame->type == net::FrameType::kHeartbeat;
            {
              std::lock_guard<std::mutex> lock(inbox_mutex);
              conns[e].last_seen = Clock::now();
              if (!beat) inbox.push_back({e, std::move(*frame), ""});
            }
            if (!beat) inbox_cv.notify_all();
          }
          push_event({e, std::nullopt, ""});
        } catch (const std::exception& error) {
          push_event({e, std::nullopt, error.what()});
        }
      });
    }

    // Handshake: every worker must echo the fingerprint and its edge
    // before the first round — a worker built from different code (or fed
    // a different manifest) fails here, not 40 rounds in.
    std::vector<char> acked(edges, 0);
    std::size_t acks = 0;
    while (acks < edges) {
      std::optional<InboxEvent> event =
          wait_event(std::chrono::milliseconds(500));
      if (!event) continue;
      if (!event->frame)
        throw net::TransportError(
            "federation: worker " + std::to_string(event->edge) +
            " died during handshake" +
            (event->error.empty() ? "" : ": " + event->error));
      if (event->frame->type != net::FrameType::kAck)
        throw CorruptStream("federation: expected ACK, got " +
                            net::frame_type_name(event->frame->type));
      ByteReader in(view(event->frame->payload));
      const std::uint32_t fp = in.get_u32();
      const std::uint64_t edge = in.get_varint();
      if (fp != impl.fingerprint || edge != event->edge)
        throw net::TransportError(
            "federation: worker " + std::to_string(event->edge) +
            " acked a mismatched fingerprint/edge -- incompatible build or "
            "manifest");
      if (!acked[event->edge]) {
        acked[event->edge] = 1;
        ++acks;
      }
    }

    // ---- the campaign ----
    FlRunResult result;
    result.scheduler = impl.scheduler->name();
    Rng cohort_rng(impl.config.seed ^ 0x5C4ED11Eull);
    Rng eligibility_rng(impl.config.seed ^ 0xE11D1B1Eull);
    std::vector<char> eligible(impl.config.clients, 1);
    std::vector<std::vector<std::size_t>> members = impl.tree->base_shards();
    std::vector<std::size_t> peak(1 + edges, 0);
    std::vector<char> dead(edges, 0);
    std::vector<char> rehomed(edges, 0);
    double virtual_now = 0.0;
    int completed = 0;
    const auto timeout = std::chrono::duration<double>(
        std::max(0.1, impl.options.heartbeat_timeout_seconds));

    while (completed < impl.config.rounds) {
      RoundRecord record;
      record.round = completed;
      record.backhaul_tier_bytes.assign(1, 0);
      record.backhaul_tier_raw_bytes.assign(1, 0);

      // Re-home the members of every edge that died since the last open:
      // round-robin over the survivors, exactly like the in-process crash
      // machinery minus the seeded shuffle (a real crash is not a seeded
      // draw; determinism across runs ends where real failures begin).
      {
        std::vector<std::size_t> displaced;
        for (std::size_t e = 0; e < edges; ++e) {
          if (!dead[e] || rehomed[e]) continue;
          rehomed[e] = 1;
          record.crashed_nodes.push_back(impl.tree->flat_index(0, e));
          displaced.insert(displaced.end(), members[e].begin(),
                           members[e].end());
          members[e].clear();
        }
        std::vector<std::size_t> alive;
        for (std::size_t e = 0; e < edges; ++e)
          if (!dead[e]) alive.push_back(e);
        if (alive.empty())
          throw net::TransportError(
              "federation: every edge worker died with rounds remaining");
        for (std::size_t k = 0; k < displaced.size(); ++k)
          members[alive[k % alive.size()]].push_back(displaced[k]);
      }

      impl.server.begin_round();
      const double t_open = virtual_now;

      // Availability draws replay the in-process (edge order, member order)
      // sequence so both transports consume the eligibility stream
      // identically; the zero-eligible fallback is the same RNG-free
      // most-available-client wake.
      std::fill(eligible.begin(), eligible.end(), 1);
      if (impl.population) {
        for (std::size_t e = 0; e < edges; ++e)
          for (const std::size_t i : members[e])
            eligible[i] = eligibility_rng.uniform() <
                          impl.population->availability(i, t_open);
        bool any = false;
        for (std::size_t i = 0; i < impl.config.clients; ++i)
          any = any || eligible[i];
        if (!any) {
          std::size_t best = 0;
          double best_p = -1.0;
          for (std::size_t i = 0; i < impl.config.clients; ++i) {
            const double p = impl.population->availability(i, t_open);
            if (p > best_p) {
              best_p = p;
              best = i;
            }
          }
          eligible[best] = 1;
        }
      }

      // Cohort draws consume cohort_rng per NON-EMPTY edge in edge order —
      // the same stream positions as the in-process open_round. With a
      // population the member set shrinks to the eligible clients BEFORE
      // the draw, and edges left with no eligible member skip theirs.
      std::vector<std::vector<std::size_t>> cohort(edges);
      std::vector<std::size_t> offset(edges, 0);
      for (std::size_t e = 0; e < edges; ++e) {
        if (dead[e] || members[e].empty()) continue;
        std::vector<std::size_t> pool;
        if (impl.population) {
          for (const std::size_t i : members[e])
            if (eligible[i]) pool.push_back(i);
        } else {
          pool = members[e];
        }
        if (pool.empty()) continue;
        const std::vector<std::size_t> draw =
            impl.scheduler->cohort(completed, pool.size(), cohort_rng);
        for (const std::size_t idx : draw) cohort[e].push_back(pool[idx]);
      }
      {
        std::size_t pos = 0;
        for (std::size_t e = 0; e < edges; ++e) {
          offset[e] = pos;
          pos += cohort[e].size();
        }
      }

      // Offline devices surface first in the round's client list, in
      // client-index order — the order the in-process open_round appends
      // them.
      if (impl.population) {
        std::vector<std::size_t> owner(impl.config.clients, 0);
        for (std::size_t e = 0; e < edges; ++e)
          for (const std::size_t i : members[e]) owner[i] = e;
        for (std::size_t i = 0; i < impl.config.clients; ++i) {
          if (eligible[i]) {
            ++record.eligible_clients;
            continue;
          }
          ++record.ineligible_clients;
          ClientTraceEntry trace;
          trace.client = i;
          trace.node = 1 + impl.tree->flat_index(0, owner[i]);
          trace.dispatch_round = completed;
          trace.dispatch_seconds = t_open;
          trace.arrival_seconds = t_open;
          trace.status = DeliveryStatus::kIneligible;
          trace.device_class = impl.population->class_name(i);
          trace.eligible = false;
          record.clients.push_back(std::move(trace));
        }
      } else {
        record.eligible_clients = impl.config.clients;
      }

      const Bytes global_blob = impl.server.global_state().serialize();
      std::vector<char> expected(edges, 0);
      std::size_t outstanding = 0;
      for (std::size_t e = 0; e < edges; ++e) {
        if (cohort[e].empty()) continue;
        RoundOpenMsg open;
        open.round = completed;
        open.t_open = t_open;
        open.cohort = cohort[e];
        const Bytes open_bytes = serialize_round_open(open);
        ByteWriter bw;
        bw.put_varint(static_cast<std::uint64_t>(completed));
        bw.put_blob(view(global_blob));
        const Bytes broadcast = bw.finish();
        try {
          conns[e].chan->send(net::FrameType::kRoundOpen, view(open_bytes));
          conns[e].chan->send(net::FrameType::kBroadcast, view(broadcast));
          expected[e] = 1;
          ++outstanding;
        } catch (const std::exception&) {
          dead[e] = 1;  // crash handling below traces the cohort
          expected[e] = 1;
          ++outstanding;
        }
      }

      auto crash = [&](std::size_t e, const std::string& why) {
        (void)why;
        dead[e] = 1;
        conns[e].alive = false;
        if (conns[e].chan) conns[e].chan->close();
        if (!expected[e]) return;
        expected[e] = 0;
        --outstanding;
        // The cohort this worker was running vanishes mid-round: trace it
        // like an in-process dropout sweep (weight 0, nothing totaled).
        for (std::size_t pos = 0; pos < cohort[e].size(); ++pos) {
          ClientTraceEntry trace;
          trace.client = cohort[e][pos];
          trace.node = 1 + impl.tree->flat_index(0, e);
          trace.dispatch_round = completed;
          trace.dispatch_seconds = t_open;
          trace.arrival_seconds = t_open;
          trace.status = DeliveryStatus::kDropped;
          if (impl.population)
            trace.device_class = impl.population->class_name(trace.client);
          record.clients.push_back(trace);
        }
      };
      for (std::size_t e = 0; e < edges; ++e)
        if (expected[e] && dead[e]) crash(e, "send failed");

      std::vector<std::optional<WirePartial>> got(edges);
      auto round_start = Clock::now();
      while (outstanding > 0) {
        std::optional<InboxEvent> event =
            wait_event(std::chrono::milliseconds(200));
        if (!event) {
          const auto now = Clock::now();
          for (std::size_t e = 0; e < edges; ++e) {
            if (!expected[e] || dead[e]) continue;
            Clock::time_point seen;
            {
              std::lock_guard<std::mutex> lock(inbox_mutex);
              seen = conns[e].last_seen;
            }
            if (now - std::max(seen, round_start) >
                std::chrono::duration_cast<Clock::duration>(timeout))
              crash(e, "heartbeat timeout");
          }
          continue;
        }
        const std::size_t e = event->edge;
        if (!event->frame) {
          crash(e, event->error.empty() ? "disconnected" : event->error);
          continue;
        }
        if (event->frame->type != net::FrameType::kPartial)
          throw CorruptStream("federation: expected PARTIAL, got " +
                              net::frame_type_name(event->frame->type));
        WirePartial partial = parse_partial(view(event->frame->payload));
        if (partial.round != completed)
          throw CorruptStream("federation: PARTIAL for round " +
                              std::to_string(partial.round) +
                              " while round " + std::to_string(completed) +
                              " is open");
        if (!expected[e])
          throw CorruptStream(
              "federation: unsolicited PARTIAL from edge " +
              std::to_string(e));
        got[e] = std::move(partial);
        expected[e] = 0;
        --outstanding;
      }

      // ---- merge, replaying the in-process event order ----
      struct Arrived {
        std::size_t edge = 0;
        double arrival = 0.0;
        WirePartial partial;
      };
      std::vector<Arrived> arrived;
      for (std::size_t e = 0; e < edges; ++e) {
        if (!got[e]) continue;
        Arrived a;
        a.edge = e;
        a.partial = std::move(*got[e]);
        a.arrival = a.partial.ship_seconds +
                    impl.tree->uplink(0, e).transfer_seconds(
                        a.partial.payload.size());
        arrived.push_back(std::move(a));
      }
      // Partial events sort by (arrival, schedule order); ship events were
      // scheduled in last-fold order, which is itself the global
      // (arrival, upload, dispatch-position) order of the final folds.
      std::sort(arrived.begin(), arrived.end(),
                [&](const Arrived& x, const Arrived& y) {
                  if (x.arrival != y.arrival) return x.arrival < y.arrival;
                  if (x.partial.ship_seconds != y.partial.ship_seconds)
                    return x.partial.ship_seconds < y.partial.ship_seconds;
                  if (x.partial.last_upload_seconds !=
                      y.partial.last_upload_seconds)
                    return x.partial.last_upload_seconds <
                           y.partial.last_upload_seconds;
                  return offset[x.edge] + x.partial.last_pos <
                         offset[y.edge] + y.partial.last_pos;
                });

      // Client deliveries across ALL edges, re-sorted into the global
      // arrival order the in-process pump folded them in, so every
      // non-associative double sum in the record accumulates identically.
      struct GlobalTrace {
        std::size_t edge = 0;
        std::size_t global_pos = 0;
        const WireClientTrace* t = nullptr;
      };
      std::vector<GlobalTrace> folds;
      for (const Arrived& a : arrived)
        for (const WireClientTrace& t : a.partial.traces)
          folds.push_back({a.edge, offset[a.edge] + t.pos, &t});
      std::sort(folds.begin(), folds.end(),
                [](const GlobalTrace& x, const GlobalTrace& y) {
                  if (x.t->arrival_seconds != y.t->arrival_seconds)
                    return x.t->arrival_seconds < y.t->arrival_seconds;
                  if (x.t->upload_seconds != y.t->upload_seconds)
                    return x.t->upload_seconds < y.t->upload_seconds;
                  return x.global_pos < y.global_pos;
                });
      for (const GlobalTrace& g : folds) {
        const WireClientTrace& t = *g.t;
        ClientTraceEntry trace;
        trace.client = t.client;
        if (impl.population)
          trace.device_class = impl.population->class_name(t.client);
        trace.node = 1 + impl.tree->flat_index(0, g.edge);
        trace.dispatch_round = completed;
        trace.dispatch_seconds = t_open;
        trace.arrival_seconds = t.arrival_seconds;
        trace.transfer_seconds = t.transfer_seconds;
        trace.weight = t.weight;
        trace.payload_bytes = t.payload_bytes;
        trace.raw_bytes = t.raw_bytes;
        trace.bound_value = t.bound_value;
        trace.lossy_tensors = t.lossy_tensors;
        trace.lossless_tensors = t.lossless_tensors;
        trace.raw_tensors = t.raw_tensors;
        trace.ef_residual_norm = t.ef_residual_norm;
        trace.decision = net::evaluate_compression(
            t.raw_bytes, t.payload_bytes, t.compress_seconds,
            t.decompress_seconds, impl.network.link(t.client));
        record.train_seconds += t.train_seconds;
        record.compress_seconds += t.compress_seconds;
        record.decompress_seconds += t.decompress_seconds;
        record.comm_seconds += t.transfer_seconds;
        record.mean_loss += t.mean_loss;
        record.bytes_sent += t.payload_bytes;
        record.raw_bytes += t.raw_bytes;
        record.mean_ef_residual_norm += t.ef_residual_norm;
        record.ef_decode_seconds += t.ef_decode_seconds;
        record.participants += 1;
        record.clients.push_back(std::move(trace));
      }

      std::size_t merged_partials = 0;
      for (const Arrived& a : arrived) {
        const WirePartial& p = a.partial;
        EdgeTraceEntry trace;
        trace.edge = impl.tree->flat_index(0, a.edge);
        trace.tier = 1;
        trace.cohort = p.clients;
        trace.weight = p.weight;
        trace.payload_bytes = p.payload.size();
        trace.raw_bytes = p.stats.original_bytes;
        trace.encode_seconds = p.stats.compress_seconds;
        trace.transfer_seconds = a.arrival - p.ship_seconds;
        trace.arrival_seconds = a.arrival;
        trace.ef_residual_norm = p.ef_residual_norm;
        CompressionStats decode_stats;
        StateDict mean =
            impl.tree->decode_partial(0, view(p.payload), &decode_stats);
        impl.server.merge_partial(mean, p.weight);
        record.aggregate_weight += p.weight;
        trace.decode_seconds = decode_stats.decompress_seconds;
        record.backhaul_bytes += trace.payload_bytes;
        record.backhaul_raw_bytes += trace.raw_bytes;
        record.backhaul_seconds += trace.transfer_seconds;
        record.backhaul_encode_seconds += trace.encode_seconds;
        record.backhaul_decode_seconds += trace.decode_seconds;
        record.backhaul_tier_bytes[0] += trace.payload_bytes;
        record.backhaul_tier_raw_bytes[0] += trace.raw_bytes;
        ++merged_partials;
        record.edges.push_back(std::move(trace));
        peak[0] = std::max<std::size_t>(peak[0], 1);
        if (p.clients > 0)
          peak[1 + impl.tree->flat_index(0, a.edge)] = std::max<std::size_t>(
              peak[1 + impl.tree->flat_index(0, a.edge)], 1);
        virtual_now = std::max(virtual_now, a.arrival);
      }

      // ---- close, exactly like the in-process close_round ----
      if (record.participants == 0)
        impl.server.abort_round();
      else
        impl.server.finalize_round();
      if (record.participants > 0) {
        const double inv = 1.0 / static_cast<double>(record.participants);
        record.train_seconds *= inv;
        record.compress_seconds *= inv;
        record.decompress_seconds *= inv;
        record.comm_seconds *= inv;
        record.mean_loss *= inv;
        record.mean_ef_residual_norm *= inv;
        record.ef_decode_seconds *= inv;
      }
      if (merged_partials > 0) {
        const double inv = 1.0 / static_cast<double>(merged_partials);
        record.backhaul_seconds *= inv;
        record.backhaul_encode_seconds *= inv;
        record.backhaul_decode_seconds *= inv;
      }
      record.virtual_seconds = virtual_now;
      if (impl.config.evaluate_every_round ||
          completed + 1 == impl.config.rounds) {
        Timer eval_timer;
        record.accuracy = impl.server.evaluate(*impl.test,
                                               impl.config.eval_limit);
        record.eval_seconds = eval_timer.seconds();
      }
      result.rounds.push_back(std::move(record));
      ++completed;
    }

    const Bytes empty;
    for (std::size_t e = 0; e < edges; ++e) {
      if (dead[e]) continue;
      try {
        conns[e].chan->send(net::FrameType::kBye, view(empty));
      } catch (const std::exception&) {
        // A worker that died between its last partial and BYE changes
        // nothing; the campaign is complete.
      }
    }
    shutdown();

    result.final_accuracy =
        result.rounds.empty() ? 0.0 : result.rounds.back().accuracy;
    result.peak_decoded_updates = peak[0];
    result.peak_decoded_per_node = std::move(peak);
    result.total_virtual_seconds = virtual_now;
    result.total_wall_seconds = wall.seconds();
    return result;
  } catch (...) {
    shutdown();
    throw;
  }
}

}  // namespace fedsz::core

// Full-run trace export: FlRunResult -> JSON. Every per-round record,
// per-client delivery, and per-partial edge entry the coordinator (or the
// distributed federation driver) produced, serialized with util/json so
// notebooks and the bench tooling can consume a run without scraping
// stdout. The layout is stable: top-level run summary, then one object per
// round carrying its `clients` and `edges` trace arrays.
#pragma once

#include <string>

#include "core/fl/coordinator.hpp"
#include "util/json.hpp"

namespace fedsz::core {

/// The whole result as an ordered JSON document.
util::JsonValue trace_json(const FlRunResult& result);

/// trace_json + util::write_json. Throws std::runtime_error on I/O errors.
void write_trace(const std::string& path, const FlRunResult& result);

}  // namespace fedsz::core

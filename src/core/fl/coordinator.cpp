#include "core/fl/coordinator.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <future>
#include <memory>
#include <utility>

#include "core/codec_spec.hpp"
#include "core/fl/checkpoint.hpp"
#include "net/virtual_clock.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace fedsz::core {

std::string delivery_status_name(DeliveryStatus status) {
  switch (status) {
    case DeliveryStatus::kAggregated:
      return "aggregated";
    case DeliveryStatus::kDropped:
      return "dropped";
    case DeliveryStatus::kEvicted:
      return "evicted";
    case DeliveryStatus::kLate:
      return "late";
    case DeliveryStatus::kIneligible:
      return "ineligible";
  }
  return "unknown";
}

void FailureSchedule::validate() const {
  if (!std::isfinite(dropout_rate) || dropout_rate < 0.0 ||
      dropout_rate > 1.0)
    throw InvalidArgument(
        "FailureSchedule: dropout_rate must be a probability in [0, 1]");
  if (!std::isfinite(edge_failure_rate) || edge_failure_rate < 0.0 ||
      edge_failure_rate > 1.0)
    throw InvalidArgument(
        "FailureSchedule: edge_failure_rate must be a probability in [0, 1]");
  if (!std::isfinite(straggler_deadline_seconds) ||
      straggler_deadline_seconds < 0.0)
    throw InvalidArgument(
        "FailureSchedule: straggler_deadline_seconds must be finite and >= 0 "
        "(0 disables the deadline)");
}

void FlRunConfig::apply_comm_spec(const CodecSpec& spec) {
  downlink_spec = spec.downlink;
  downlink_mode =
      spec.downlink_delta ? DownlinkMode::kDelta : DownlinkMode::kFull;
  error_feedback = spec.error_feedback;
  topology.mode =
      spec.hier_tiers.empty() ? TopologyMode::kFlat : TopologyMode::kHier;
  topology.tiers = spec.hier_tiers;
  topology.fanout = 0;  // the spec grammar always resolves to tiers
  topology.backhaul_spec = spec.backhaul;
  topology.tier_backhaul_specs = spec.tier_backhauls;
  topology.edge_mode =
      spec.edge_buffered ? EdgeMode::kBuffered : EdgeMode::kSync;
  topology.edge_buffer = spec.edge_buffer;
  topology.edge_error_feedback = spec.edge_error_feedback;
  topology.sharding = spec.shard_shuffled ? ShardStrategy::kShuffled
                                          : ShardStrategy::kContiguous;
  transport = spec.transport;
  checkpoint_path = spec.checkpoint_path;
  checkpoint_every = spec.checkpoint_every;
  dirichlet_alpha = spec.dirichlet_alpha;
  sizeskew_s = spec.sizeskew_s;
  population = spec.population.empty() ? PopulationConfig{}
                                       : parse_population_spec(spec.population);
}

void FlRunConfig::validate() const {
  if (clients == 0)
    throw InvalidArgument("FlRunConfig: need at least one client");
  if (rounds <= 0) throw InvalidArgument("FlRunConfig: rounds must be >= 1");
  if (threads == 0) throw InvalidArgument("FlRunConfig: threads must be >= 1");
  if (!(compute_seconds_per_sample >= 0.0) ||
      !std::isfinite(compute_seconds_per_sample))
    throw InvalidArgument(
        "FlRunConfig: compute_seconds_per_sample must be finite and >= 0");
  if (!(compute_jitter >= 0.0) || compute_jitter >= 1.0)
    throw InvalidArgument("FlRunConfig: compute_jitter must be in [0, 1)");
  if (client.local_epochs <= 0)
    throw InvalidArgument("FlRunConfig: local_epochs must be >= 1");
  if (client.batch_size == 0)
    throw InvalidArgument("FlRunConfig: batch_size must be >= 1");
  if (!downlink_spec.empty()) {
    // Malformed specs throw InvalidArgument from the parser itself.
    if (parse_codec_spec(downlink_spec).has_comm_keys())
      throw InvalidArgument(
          "FlRunConfig: downlink_spec cannot itself carry comm keys");
  } else if (downlink_mode == DownlinkMode::kDelta) {
    // Catch the downmode=delta-without-downlink= mistake loudly instead of
    // silently running with a free lossless broadcast.
    throw InvalidArgument(
        "FlRunConfig: downlink_mode=kDelta requires a downlink_spec");
  }
  if (!(dirichlet_alpha >= 0.0) || !std::isfinite(dirichlet_alpha))
    throw InvalidArgument(
        "FlRunConfig: dirichlet_alpha must be finite and >= 0 (0 = IID)");
  if (!(sizeskew_s >= 0.0) || !std::isfinite(sizeskew_s))
    throw InvalidArgument(
        "FlRunConfig: sizeskew_s must be finite and >= 0 (0 = off)");
  population.validate();
  if (!population.empty() && heterogeneous)
    throw InvalidArgument(
        "FlRunConfig: population and heterogeneous both configure per-client "
        "links; set at most one");
  failures.validate();
  if (failures.edge_failure_rate > 0.0 && topology.mode != TopologyMode::kHier)
    throw InvalidArgument(
        "FlRunConfig: failures.edge_failure_rate needs an edge tier to "
        "crash -- set topology=hier:<N>[x<M>...]");
  topology.validate();
  if (!transport.empty()) {
    if (transport.rfind("tcp:", 0) != 0)
      throw InvalidArgument(
          "FlRunConfig: transport must be empty (inproc) or tcp:<port>");
    if (topology.mode != TopologyMode::kHier)
      throw InvalidArgument(
          "FlRunConfig: transport=tcp needs edge cohorts to distribute -- "
          "set topology=hier:<N>");
  }
  if (checkpoint_path.empty()) {
    if (checkpoint_every != 0 || resume)
      throw InvalidArgument(
          "FlRunConfig: checkpoint_every/resume need a checkpoint_path");
  } else if (checkpoint_every == 0) {
    throw InvalidArgument(
        "FlRunConfig: checkpoint_path needs checkpoint_every >= 1");
  }
}

namespace {

FlRunConfig validated(FlRunConfig config) {
  config.validate();
  return config;
}

}  // namespace

net::HeterogeneousNetwork build_population_network(
    const FlRunConfig& config, const ClientPopulation* population) {
  if (population)
    return net::HeterogeneousNetwork::from_profiles(
        population->link_profiles());
  return net::build_links(config.heterogeneous, config.network,
                          config.clients);
}

std::vector<std::vector<std::size_t>> build_client_shards(
    const data::Dataset& train, const FlRunConfig& config,
    const ClientPopulation* population) {
  Rng rng(config.seed);
  auto shards = config.dirichlet_alpha > 0.0
                    ? data::partition_dirichlet(data::dataset_labels(train),
                                                config.clients,
                                                config.dirichlet_alpha, rng)
                    : data::partition_iid(train.size(), config.clients, rng);
  // A heavily skewed Dirichlet draw can leave a client with no samples;
  // an empty shard cannot train, so deterministically move one sample over
  // from the largest shard (conservation holds, skew barely changes).
  if (config.dirichlet_alpha > 0.0) data::ensure_nonempty_shards(shards);
  if (config.sizeskew_s > 0.0) {
    // Its own stream, so turning size skew on leaves the base partition
    // byte-identical to a sizeskew-free run.
    Rng skew_rng(config.seed ^ 0x517E55EDull);
    data::apply_sizeskew(shards, config.sizeskew_s, skew_rng);
  }
  if (population) {
    // Device-class data weight: a phone holds a fraction of what a laptop
    // does. The shard is already shuffled, so a prefix is an unbiased
    // subsample and costs no randomness.
    for (std::size_t i = 0; i < shards.size(); ++i) {
      if (shards[i].empty()) continue;
      const double weight = population->data_weight(i);
      std::size_t keep = static_cast<std::size_t>(
          std::llround(weight * static_cast<double>(shards[i].size())));
      keep = std::min(std::max<std::size_t>(keep, 1), shards[i].size());
      shards[i].resize(keep);
    }
  }
  return shards;
}

FlCoordinator::FlCoordinator(const nn::ModelConfig& model_config,
                             data::DatasetPtr train, data::DatasetPtr test,
                             FlRunConfig config, UpdateCodecPtr codec,
                             SchedulerPtr scheduler)
    : model_config_(model_config),
      test_(std::move(test)),
      config_(validated(std::move(config))),
      codec_(std::move(codec)),
      scheduler_(scheduler ? std::move(scheduler) : make_sync_scheduler()),
      server_(model_config),
      population_(config_.population.empty()
                      ? nullptr
                      : std::make_unique<ClientPopulation>(
                            config_.population, config_.clients,
                            config_.seed)),
      network_(build_population_network(config_, population_.get())) {
  if (!codec_) throw InvalidArgument("FlCoordinator: null update codec");
  if (!config_.failures.empty() && scheduler_->continuous())
    // Continuous policies have no round barrier to drop out of or be
    // evicted from; their own staleness handling IS the churn model.
    throw InvalidArgument(
        "FlCoordinator: failure injection requires a barrier scheduler "
        "(sync or sampled_sync)");
  if (population_ && scheduler_->continuous())
    // Eligibility is a round-open concept; a continuous policy has no round
    // open to gate, so the combination would silently ignore availability.
    throw InvalidArgument(
        "FlCoordinator: a client population requires a barrier scheduler "
        "(sync or sampled_sync)");
  if (!config_.checkpoint_path.empty()) {
    // A checkpoint captures state BETWEEN rounds, when the event queue is
    // provably empty. Regimes that keep events alive across a round close
    // (continuous redispatch, pending straggler deadlines, buffered
    // interior nodes with late deliveries in flight) would need the queue
    // itself serialized — closures and all — so they are rejected loudly.
    if (scheduler_->continuous())
      throw InvalidArgument(
          "FlCoordinator: checkpointing requires a barrier scheduler "
          "(sync or sampled_sync)");
    if (config_.failures.straggler_deadline_seconds > 0.0)
      throw InvalidArgument(
          "FlCoordinator: checkpointing is incompatible with a straggler "
          "deadline (its eviction event outlives the round close)");
    if (config_.topology.edge_mode == EdgeMode::kBuffered)
      throw InvalidArgument(
          "FlCoordinator: checkpointing requires edgemode=sync (buffered "
          "rounds can close with deliveries still in flight)");
  }
  if (config_.topology.mode == TopologyMode::kHier) {
    // Continuous policies redispatch on fold; a partial that already left
    // for the root cannot absorb a late fold, so hierarchy requires a
    // barrier over each edge cohort.
    if (scheduler_->continuous())
      throw InvalidArgument(
          "FlCoordinator: hierarchical topology requires a barrier "
          "scheduler (sync or sampled_sync)");
    TopologyConfig tree_config = config_.topology;
    if (tree_config.sharding == ShardStrategy::kShuffled &&
        tree_config.shard_seed == 0)
      tree_config.shard_seed = config_.seed ^ 0x5A4DD00Dull;
    tree_ = std::make_unique<AggregationTree>(tree_config, config_.clients);
  }
  if (!config_.downlink_spec.empty())
    downlink_ = std::make_unique<DownlinkChannel>(
        DownlinkConfig{config_.downlink_mode,
                       make_codec(parse_codec_spec(config_.downlink_spec))},
        config_.clients);
  feedback_.resize(config_.clients);
  const auto shards = build_client_shards(*train, config_, population_.get());
  Rng speed_rng(config_.seed ^ 0xC0DEC10Cull);
  compute_seconds_.reserve(config_.clients);
  for (std::size_t i = 0; i < config_.clients; ++i) {
    ClientConfig client_config = config_.client;
    client_config.seed = config_.seed ^ (0xC11E47ull * (i + 1));
    clients_.push_back(std::make_unique<FlClient>(
        static_cast<int>(i), model_config_,
        std::make_shared<data::SubsetDataset>(train, shards[i]),
        client_config));
    // Deterministic virtual training time: proportional to the shard, with
    // an optional per-client speed spread (heterogeneous devices) and the
    // device class's compute multiplier (after the jitter draw, so the
    // speed stream's consumption never depends on the population).
    const double factor = speed_rng.uniform(1.0 - config_.compute_jitter,
                                            1.0 + config_.compute_jitter);
    const double class_multiplier =
        population_ ? population_->compute_multiplier(i) : 1.0;
    compute_seconds_.push_back(
        config_.compute_seconds_per_sample *
        static_cast<double>(shards[i].size()) *
        static_cast<double>(config_.client.local_epochs) * factor *
        class_multiplier);
  }
}

FlRunResult FlCoordinator::run() {
  Timer wall;
  FlRunResult result;
  result.scheduler = scheduler_->name();

  // What a dispatched client hands back once its real work (broadcast
  // decode + local SGD + update encoding on the pool) completes.
  struct WorkerOut {
    Bytes payload;
    std::size_t samples = 0;
    CompressionStats stats;  // the encode pass (bytes, plan census, timing)
    double train_seconds = 0.0;
    double mean_loss = 0.0;
    double downlink_decode_seconds = 0.0;  // per-client broadcast decode
    double ef_residual_norm = 0.0;         // after this update's encode
    double ef_decode_seconds = 0.0;  // decoding own payload for the residual
  };
  // One slot per client; a client has at most one update in flight.
  struct InFlight {
    std::future<WorkerOut> future;
    WorkerOut out;
    int dispatch_round = 0;
    double dispatch_seconds = 0.0;
    double transfer_seconds = 0.0;
    // Downlink leg (zeros when the broadcast is free/lossless).
    std::size_t downlink_bytes = 0;
    std::size_t downlink_raw_bytes = 0;
    double downlink_seconds = 0.0;
    double downlink_encode_seconds = 0.0;
    double downlink_decode_seconds = 0.0;  // kFull shared decode
  };
  // Shared kFull broadcast product: encoded once, decoded once, delivered
  // down the tree. Hoisted so the recursive fan-out handler can name it.
  struct BroadcastReady {
    Bytes payload;
    CompressionStats stats;
    std::shared_ptr<const StateDict> model;  // the shared reconstruction
    double decode_seconds = 0.0;
  };

  net::EventQueue queue;
  std::vector<InFlight> flights(clients_.size());
  Rng cohort_rng(config_.seed ^ 0x5C4ED11Eull);
  // Churn draws ride their own stream: a failure-free run consumes exactly
  // the randomness it did before churn existed, keeping trajectory pins.
  Rng failure_rng(config_.failures.seed
                      ? config_.failures.seed
                      : (config_.seed ^ 0xFA17A1E5ull));
  // Population availability draws ride their own stream too (advanced only
  // when a population is active), checkpointed so a resumed run replays the
  // exact eligibility sequence.
  Rng eligibility_rng(config_.seed ^ 0xE11D1B1Eull);
  int completed = 0;  // aggregations finished so far
  bool stopped = false;
  RoundRecord record;

  // Per-client lifecycle. Every scheduled client event carries the
  // generation it was dispatched under; eviction or redispatch bumps it, so
  // stale upload/arrival events for a superseded dispatch become no-ops.
  enum class Phase : std::uint8_t { kIdle, kPending, kDone, kDropped,
                                    kEvicted };
  std::vector<Phase> phase(clients_.size(), Phase::kIdle);
  std::vector<std::uint64_t> generation(clients_.size(), 0);
  std::vector<char> dropped(clients_.size(), 0);  // this round's dropout draws
  // This round's availability draws (all 1 when no population is active).
  std::vector<char> eligible(clients_.size(), 1);
  // Tier-1 edge owning each client THIS round (crash re-sharding moves it).
  std::vector<std::size_t> owner_round(clients_.size(), 0);

  // Root state: arrivals folded/merged since the round opened and the count
  // that closes it (updates when flat, top-tier partials when hier).
  std::size_t root_folded = 0;
  std::size_t root_goal = 0;
  std::size_t merged_partials = 0;  // partials merged this round, all tiers
  // Shipped partials whose arrival event has not executed yet. Whatever is
  // still in flight when the run stops never merges anywhere — fold those
  // into late_events at exit so weight that left an edge is always either
  // merged, traced kLate, or counted late.
  std::size_t partials_in_flight = 0;

  const std::size_t levels = tree_ ? tree_->levels() : 0;
  const std::size_t interior = tree_ ? tree_->interior_nodes() : 0;
  const std::size_t edge_count = tree_ ? tree_->edge_count() : 0;
  const bool buffered =
      tree_ && config_.topology.edge_mode == EdgeMode::kBuffered;
  const std::size_t buffer_k = config_.topology.edge_buffer;

  // Per-aggregation-point decoded-payload accounting: node 0 = the root,
  // 1 + flat_index for interior nodes. Streaming keeps every live count
  // at <= 1.
  std::vector<std::size_t> live(1 + interior, 0);
  std::vector<std::size_t> peak(1 + interior, 0);

  // Per-node round state (hier only). `expected` counts the children still
  // promised this round — it starts at the cohort/child draw and shrinks
  // when a child drops, is evicted or withdraws, while `folded` only grows;
  // folded >= expected is the sync ship condition.
  struct NodeRound {
    bool participating = false;  // had >= 1 expected child this round
    bool open = false;           // still accepting folds
    std::size_t expected = 0;
    std::size_t folded = 0;
  };
  std::vector<std::vector<NodeRound>> nodes(levels);
  for (std::size_t l = 0; l < levels; ++l) nodes[l].resize(tree_->level_size(l));
  // This round's member set per tier-1 edge (after crash re-sharding) and
  // the drawn cohort, in dispatch order.
  std::vector<std::vector<std::size_t>> edge_members(edge_count);
  std::vector<std::vector<std::size_t>> edge_cohort(edge_count);
  // Participating children of each node above tier 1 (level l-1 indices).
  std::vector<std::vector<std::vector<std::size_t>>> children_part(levels);
  for (std::size_t l = 1; l < levels; ++l)
    children_part[l].resize(tree_->level_size(l));
  // Broadcast traffic charged to each interior node's link this round.
  std::vector<std::size_t> node_downlink_bytes(interior, 0);
  std::vector<double> node_downlink_seconds(interior, 0.0);

  using Snapshot = std::shared_ptr<const StateDict>;
  using PayloadPtr = std::shared_ptr<const Bytes>;

  // The client's real work, run on the pool: decode the broadcast payload
  // when one was delivered (per-client path), train on the resulting model,
  // fold in the error-feedback residual, encode, and — with EF on — absorb
  // what the encoder dropped (reconstruction read back from the payload)
  // into the residual carried to the next round. Per-client state
  // (feedback_[i], downlink session i) is safe without locks because a
  // client never has two tasks alive at once (dispatch waits out a stale
  // evicted task before reusing the slot).
  // EF against a lossless uplink is provably a zero residual forever; skip
  // the per-round payload decode and residual passes outright.
  const bool ef_on = config_.error_feedback && !codec_->lossless();
  auto client_work = [this, ef_on](std::size_t i, int round, Snapshot model,
                                   PayloadPtr broadcast) -> WorkerOut {
    WorkerOut out;
    StateDict decoded_model;
    const StateDict* train_on = model.get();
    if (broadcast) {
      CompressionStats downlink_stats;
      const ByteSpan span{broadcast->data(), broadcast->size()};
      decoded_model = downlink_->mode() == DownlinkMode::kDelta
                          ? downlink_->receive(i, span, &downlink_stats)
                          : downlink_->decode_broadcast(span, &downlink_stats);
      out.downlink_decode_seconds = downlink_stats.decompress_seconds;
      train_on = &decoded_model;
    }
    ClientRoundResult round_result = clients_[i]->run_round(*train_on);
    EncodeContext ctx;
    ctx.round = round;
    ctx.client_id = static_cast<int>(i);
    ctx.steps = round_result.steps;
    StateDict update = std::move(round_result.update);
    if (ef_on) update = feedback_[i].apply(update);
    UpdateCodec::Encoded encoded = codec_->encode(update, ctx);
    if (ef_on) {
      // The server will decode exactly this; what it misses is carried over.
      CompressionStats ef_stats;
      const StateDict reconstruction = codec_->decode(
          {encoded.payload.data(), encoded.payload.size()}, &ef_stats);
      feedback_[i].absorb(update, reconstruction);
      out.ef_residual_norm = feedback_[i].residual_norm();
      out.ef_decode_seconds = ef_stats.decompress_seconds;
    }
    out.samples = round_result.samples;
    out.stats = encoded.stats;
    out.train_seconds = round_result.train_seconds;
    out.mean_loss = round_result.mean_loss;
    out.payload = std::move(encoded.payload);
    return out;
  };

  // Declared after client_work (and the flight/record state above) so the
  // pool destructor can still drain in-flight tasks that reference them.
  ThreadPool pool(std::max<std::size_t>(1, config_.threads));
  std::function<void(std::size_t, int, Snapshot, PayloadPtr)> dispatch;
  std::function<void(std::size_t, int, Snapshot)> send_to;
  std::function<void(std::size_t, std::size_t, int,
                     std::shared_ptr<const std::vector<std::size_t>>,
                     PayloadPtr)>
      send_hop;
  std::function<void(const std::vector<std::size_t>&, int, Snapshot)>
      broadcast_to;
  std::function<void(std::size_t, int, std::shared_ptr<const BroadcastReady>)>
      deliver_client;
  std::function<void(std::size_t, std::size_t, int,
                     std::shared_ptr<const BroadcastReady>)>
      deliver_subtree;
  std::function<void(std::size_t, std::uint64_t)> on_upload;
  std::function<void(std::size_t, std::uint64_t)> on_arrival;
  std::function<void(std::size_t, std::uint64_t)> on_drop;
  std::function<void(std::size_t, std::size_t)> check_node;
  std::function<void(std::size_t, std::size_t)> ship_node;
  std::function<void(std::size_t, std::size_t)> withdraw_node;
  std::function<void(std::size_t, std::size_t)> node_lost_child;
  std::function<void(std::size_t, std::size_t, int, double,
                     std::shared_ptr<const EncodedPartial>)>
      on_partial;
  std::function<void()> maybe_close_root;
  std::function<void()> evict_stragglers;
  std::function<void()> close_round;
  std::function<void(bool)> open_round;

  // Snapshot everything that evolves across rounds. Only called between
  // rounds (from close_round, before the next open), where the barrier
  // restrictions enforced in the constructor guarantee an empty queue —
  // the virtual clock pair (now, next_seq) then fully determines resumed
  // event ordering.
  auto save_checkpoint = [&] {
    if (queue.pending() != 0)
      throw InvalidArgument(
          "FlCoordinator: internal error -- pending events at checkpoint");
    CheckpointState state;
    state.completed_rounds = static_cast<std::uint64_t>(completed);
    state.virtual_now = queue.now();
    state.clock_next_seq = queue.next_seq();
    state.config_fingerprint = run_fingerprint(config_, model_config_);
    state.global_state = server_.global_state();
    state.aggregator_name = server_.aggregator().name();
    ByteWriter aggregator_out;
    server_.aggregator().save_state(aggregator_out);
    state.aggregator_state = aggregator_out.finish();
    state.cohort_rng = cohort_rng.state();
    state.failure_rng = failure_rng.state();
    state.eligibility_rng = eligibility_rng.state();
    state.client_residuals.reserve(feedback_.size());
    for (const ErrorFeedbackAccumulator& fb : feedback_)
      state.client_residuals.push_back(fb.residual());
    if (downlink_ && downlink_->mode() == DownlinkMode::kDelta)
      state.downlink_sessions = downlink_->sessions();
    if (tree_ && config_.topology.edge_error_feedback)
      for (std::size_t l = 0; l < levels; ++l)
        for (std::size_t n = 0; n < tree_->level_size(l); ++n)
          state.edge_residuals.push_back(
              tree_->node(l, n).feedback().residual());
    write_checkpoint(config_.checkpoint_path, state);
  };

  // Start a client's real work on the pool and its virtual compute timer.
  // `model` is the state it trains on (the global snapshot, or the shared
  // kFull broadcast reconstruction); `broadcast` (per-client downlink path)
  // makes the worker decode its own payload first. A client drawn as a
  // dropout this round never reaches the pool: it "trains" for half its
  // compute budget and vanishes.
  dispatch = [&](std::size_t i, int round, Snapshot model,
                 PayloadPtr broadcast) {
    InFlight& flight = flights[i];
    // An evicted client's pool task may still be running; finish it before
    // reusing the per-client state it touches (feedback_, the client).
    if (flight.future.valid()) flight.future.wait();
    flight.dispatch_round = round;
    flight.dispatch_seconds = queue.now();
    const std::uint64_t gen = ++generation[i];
    phase[i] = Phase::kPending;
    if (dropped[i]) {
      queue.schedule_after(0.5 * compute_seconds_[i],
                           [&, i, gen] { on_drop(i, gen); });
      return;
    }
    flight.future = pool.submit([&client_work, i, round, model, broadcast] {
      return client_work(i, round, std::move(model), std::move(broadcast));
    });
    queue.schedule_after(compute_seconds_[i],
                         [&, i, gen] { on_upload(i, gen); });
  };

  // Per-client downlink: encode this client's broadcast on the pool (the
  // whole global, or its session delta in kDelta mode), then charge the
  // payload against every hop on its path — each ancestor node's own link
  // top-down under a hierarchical topology — before the client's own link
  // and compute may start.
  send_to = [&](std::size_t i, int round, Snapshot snapshot) {
    const bool delta = downlink_->mode() == DownlinkMode::kDelta;
    auto pending = std::make_shared<std::future<BroadcastPayload>>(
        pool.submit([this, delta, i, round, snapshot] {
          return delta ? downlink_->encode_for_client(i, *snapshot, round)
                       : downlink_->encode_broadcast(*snapshot, round);
        }));
    queue.schedule_after(0.0, [&, i, round, pending] {
      BroadcastPayload broadcast = pending->get();
      InFlight& flight = flights[i];
      auto payload = std::make_shared<const Bytes>(
          std::move(broadcast.payload));
      flight.downlink_bytes = payload->size();
      flight.downlink_raw_bytes = broadcast.stats.original_bytes;
      flight.downlink_encode_seconds = broadcast.stats.compress_seconds;
      flight.downlink_decode_seconds = 0.0;
      flight.downlink_seconds =
          network_.link(i).transfer_seconds(payload->size());
      if (!tree_) {
        queue.schedule_after(flight.downlink_seconds, [&, i, round, payload] {
          dispatch(i, round, nullptr, payload);
        });
        return;
      }
      // The client's ancestor chain, bottom-up: path[l] is the node at
      // level l the payload crosses on its way down.
      auto path = std::make_shared<std::vector<std::size_t>>();
      path->push_back(owner_round[i]);
      for (std::size_t l = 1; l < levels; ++l)
        path->push_back(tree_->parent_of(l - 1, path->back()));
      send_hop(0, i, round, path, payload);
    });
  };

  // Hop `k` (0 = topmost: root -> top-tier node) of a per-client downlink
  // path; after the last interior hop comes the client's own link.
  send_hop = [&](std::size_t k, std::size_t i, int round,
                 std::shared_ptr<const std::vector<std::size_t>> path,
                 PayloadPtr payload) {
    if (k == levels) {
      queue.schedule_after(flights[i].downlink_seconds, [&, i, round, payload] {
        dispatch(i, round, nullptr, payload);
      });
      return;
    }
    const std::size_t l = levels - 1 - k;
    const std::size_t n = (*path)[l];
    const std::size_t flat = tree_->flat_index(l, n);
    const double hop = tree_->uplink(l, n).transfer_seconds(payload->size());
    node_downlink_bytes[flat] += payload->size();
    node_downlink_seconds[flat] += hop;
    record.backhaul_downlink_bytes += payload->size();
    record.backhaul_downlink_seconds += hop;
    queue.schedule_after(hop, [&, k, i, round, path, payload] {
      send_hop(k + 1, i, round, path, payload);
    });
  };

  // The last downlink leg: charge the shared broadcast payload against the
  // client's own link, then dispatch on the shared reconstruction.
  deliver_client = [&](std::size_t i, int round,
                       std::shared_ptr<const BroadcastReady> ready) {
    InFlight& flight = flights[i];
    flight.downlink_bytes = ready->payload.size();
    flight.downlink_raw_bytes = ready->stats.original_bytes;
    flight.downlink_encode_seconds = ready->stats.compress_seconds;
    flight.downlink_decode_seconds = ready->decode_seconds;
    flight.downlink_seconds =
        network_.link(i).transfer_seconds(ready->payload.size());
    queue.schedule_after(flight.downlink_seconds,
                         [&, i, round, model = ready->model] {
                           dispatch(i, round, model, nullptr);
                         });
  };

  // Hierarchical kFull fan-out: ONE copy of the broadcast crosses each
  // participating node's link, recursing level by level; a subtree's
  // clients start their own downlink legs when it reaches their edge.
  deliver_subtree = [&](std::size_t l, std::size_t n, int round,
                        std::shared_ptr<const BroadcastReady> ready) {
    const std::size_t flat = tree_->flat_index(l, n);
    const double hop =
        tree_->uplink(l, n).transfer_seconds(ready->payload.size());
    node_downlink_bytes[flat] += ready->payload.size();
    node_downlink_seconds[flat] += hop;
    record.backhaul_downlink_bytes += ready->payload.size();
    record.backhaul_downlink_seconds += hop;
    queue.schedule_after(hop, [&, l, n, round, ready] {
      if (l == 0) {
        for (const std::size_t i : edge_cohort[n])
          deliver_client(i, round, ready);
      } else {
        for (const std::size_t c : children_part[l][n])
          deliver_subtree(l - 1, c, round, ready);
      }
    });
  };

  // kFull cohort broadcast: encode the global ONCE on the pool (overlapped
  // with the event pump), decode it once — every client reconstructs the
  // same model — and fan the same payload out (flat: straight to each
  // client; hier: down the participating subtrees).
  broadcast_to = [&](const std::vector<std::size_t>& cohort, int round,
                     Snapshot snapshot) {
    auto pending = std::make_shared<std::future<BroadcastReady>>(
        pool.submit([this, round, snapshot]() -> BroadcastReady {
          BroadcastReady ready;
          BroadcastPayload broadcast =
              downlink_->encode_broadcast(*snapshot, round);
          CompressionStats decode_stats;
          ready.model = std::make_shared<const StateDict>(
              downlink_->decode_broadcast(
                  {broadcast.payload.data(), broadcast.payload.size()},
                  &decode_stats));
          ready.payload = std::move(broadcast.payload);
          ready.stats = broadcast.stats;
          ready.decode_seconds = decode_stats.decompress_seconds;
          return ready;
        }));
    queue.schedule_after(0.0, [&, cohort, round, pending] {
      auto ready = std::make_shared<const BroadcastReady>(pending->get());
      if (!tree_) {
        for (const std::size_t i : cohort) deliver_client(i, round, ready);
        return;
      }
      const std::size_t top = levels - 1;
      for (std::size_t n = 0; n < nodes[top].size(); ++n)
        if (nodes[top][n].participating)
          deliver_subtree(top, n, round, ready);
    });
  };

  // Virtual compute done: collect the encoded update (waiting for the real
  // work if it is still running) and put it on this client's link. A stale
  // generation or a non-pending phase means this dispatch was superseded
  // (evicted, or its round closed under it); kIdle specifically means the
  // round already closed — count it, the record is immutable.
  on_upload = [&](std::size_t i, std::uint64_t gen) {
    if (stopped) return;
    if (gen != generation[i]) return;
    if (phase[i] == Phase::kIdle) {
      ++result.late_events;
      return;
    }
    if (phase[i] != Phase::kPending) return;
    InFlight& flight = flights[i];
    flight.out = flight.future.get();
    flight.transfer_seconds =
        network_.link(i).transfer_seconds(flight.out.payload.size());
    queue.schedule_after(flight.transfer_seconds,
                         [&, i, gen] { on_arrival(i, gen); });
  };

  // Close the current aggregation once everything the root still expects
  // has merged. Guarded so churn paths can call it opportunistically.
  maybe_close_root = [&] {
    if (!stopped && root_folded >= root_goal) close_round();
  };

  close_round = [&] {
    if (record.participants == 0)
      // Everything churned away: keep the global untouched this round.
      server_.abort_round();
    else
      server_.finalize_round();
    if (record.participants > 0) {
      const double inv = 1.0 / static_cast<double>(record.participants);
      record.train_seconds *= inv;
      record.compress_seconds *= inv;
      record.decompress_seconds *= inv;
      record.comm_seconds *= inv;
      record.mean_loss *= inv;
      record.downlink_seconds *= inv;
      record.downlink_encode_seconds *= inv;
      record.downlink_decode_seconds *= inv;
      record.mean_ef_residual_norm *= inv;
      record.ef_decode_seconds *= inv;
    }
    if (merged_partials > 0) {
      const double inv_edges = 1.0 / static_cast<double>(merged_partials);
      record.backhaul_seconds *= inv_edges;
      record.backhaul_encode_seconds *= inv_edges;
      record.backhaul_decode_seconds *= inv_edges;
      record.backhaul_downlink_seconds *= inv_edges;
    }
    record.virtual_seconds = queue.now();
    if (config_.evaluate_every_round || completed + 1 == config_.rounds) {
      Timer eval_timer;
      record.accuracy = server_.evaluate(*test_, config_.eval_limit);
      record.eval_seconds = eval_timer.seconds();
    }
    result.rounds.push_back(std::move(record));
    ++completed;
    if (!config_.checkpoint_path.empty() &&
        static_cast<std::size_t>(completed) % config_.checkpoint_every == 0)
      save_checkpoint();
    if (completed >= config_.rounds)
      stopped = true;
    else
      open_round(false);
  };

  // Per-node ship/withdraw machinery (hier only). A node ships when every
  // still-promised child delivered (or, buffered, after min(K, expected)
  // folds); a node whose whole expectation churned away withdraws, which
  // cascades one level up.
  check_node = [&](std::size_t l, std::size_t n) {
    NodeRound& s = nodes[l][n];
    if (!s.participating || !s.open) return;
    if (s.folded == 0) {
      if (s.expected == 0) withdraw_node(l, n);
      return;
    }
    const std::size_t target =
        buffered ? std::min(buffer_k, s.expected) : s.expected;
    if (s.folded >= target) ship_node(l, n);
  };

  ship_node = [&](std::size_t l, std::size_t n) {
    nodes[l][n].open = false;
    auto partial = std::make_shared<const EncodedPartial>(
        tree_->node(l, n).finalize_and_encode(completed));
    ++partials_in_flight;
    const double transfer =
        tree_->uplink(l, n).transfer_seconds(partial->payload.size());
    queue.schedule_after(transfer,
                         [&, l, n, round = completed, transfer, partial] {
                           on_partial(l, n, round, transfer, partial);
                         });
  };

  withdraw_node = [&](std::size_t l, std::size_t n) {
    NodeRound& s = nodes[l][n];
    s.open = false;
    s.participating = false;
    tree_->node(l, n).abort_round();
    if (l + 1 == levels) {
      if (root_goal > 0) --root_goal;
      maybe_close_root();
    } else {
      node_lost_child(l + 1, tree_->parent_of(l, n));
    }
  };

  node_lost_child = [&](std::size_t l, std::size_t n) {
    NodeRound& s = nodes[l][n];
    if (s.expected > 0) --s.expected;
    check_node(l, n);
  };

  // A client drawn as a dropout vanished mid-round: trace it (weight 0) and
  // release its aggregation point from waiting on it.
  on_drop = [&](std::size_t i, std::uint64_t gen) {
    if (stopped) return;
    if (gen != generation[i] || phase[i] != Phase::kPending) return;
    phase[i] = Phase::kDropped;
    const InFlight& flight = flights[i];
    ClientTraceEntry trace;
    trace.client = i;
    trace.node = tree_ ? 1 + tree_->flat_index(0, owner_round[i]) : 0;
    trace.dispatch_round = flight.dispatch_round;
    trace.dispatch_seconds = flight.dispatch_seconds;
    trace.arrival_seconds = queue.now();  // when the client went silent
    trace.downlink_bytes = flight.downlink_bytes;
    trace.downlink_seconds = flight.downlink_seconds;
    trace.status = DeliveryStatus::kDropped;
    if (population_) trace.device_class = population_->class_name(i);
    record.clients.push_back(std::move(trace));
    if (!tree_) {
      // Barrier goals equal the cohort size, so one fewer possible arrival
      // is one fewer to wait for.
      if (root_goal > 0) --root_goal;
      maybe_close_root();
    } else {
      node_lost_child(0, owner_round[i]);
    }
  };

  // An update reached its aggregation point — the root (flat) or the
  // owning edge (hier): decode it (serially per node — at most one decoded
  // update is ever alive there), fold it into that node's streaming
  // accumulator, score the Eqn (1) decision against this client's own
  // link, and trigger the node's close-out once its goal is met.
  on_arrival = [&](std::size_t i, std::uint64_t gen) {
    if (stopped) return;
    if (gen != generation[i]) return;
    if (phase[i] == Phase::kIdle) {
      ++result.late_events;
      return;
    }
    if (phase[i] != Phase::kPending) return;
    phase[i] = Phase::kDone;
    InFlight& flight = flights[i];
    WorkerOut out = std::move(flight.out);
    flight.out = WorkerOut{};
    const std::size_t e = tree_ ? owner_round[i] : 0;
    const std::size_t node_id = tree_ ? 1 + tree_->flat_index(0, e) : 0;

    ClientTraceEntry trace;
    trace.client = i;
    trace.node = node_id;
    trace.dispatch_round = flight.dispatch_round;
    trace.dispatch_seconds = flight.dispatch_seconds;
    trace.arrival_seconds = queue.now();
    trace.transfer_seconds = flight.transfer_seconds;
    trace.payload_bytes = out.payload.size();
    trace.raw_bytes = out.stats.original_bytes;
    trace.bound_value = out.stats.mean_bound_value;
    trace.lossy_tensors = out.stats.lossy_tensors;
    trace.lossless_tensors = out.stats.lossless_tensors;
    trace.raw_tensors = out.stats.raw_tensors;
    trace.sparse_tensors = out.stats.sparse_tensors;
    trace.downlink_bytes = flight.downlink_bytes;
    trace.downlink_seconds = flight.downlink_seconds;
    trace.ef_residual_norm = out.ef_residual_norm;
    if (population_) trace.device_class = population_->class_name(i);

    if (tree_ && !nodes[0][e].open) {
      // Its buffered edge already shipped: the update landed with nowhere
      // to fold. Trace it, but keep it out of every round total.
      trace.status = DeliveryStatus::kLate;
      record.clients.push_back(std::move(trace));
      return;
    }

    CompressionStats decode_stats;
    StateDict update = codec_->decode({out.payload.data(), out.payload.size()},
                                      &decode_stats);
    ++live[node_id];
    peak[node_id] = std::max(peak[node_id], live[node_id]);
    const double weight =
        static_cast<double>(out.samples) *
        scheduler_->staleness_scale(flight.dispatch_round, completed);
    if (tree_) {
      tree_->node(0, e).fold(update, weight);
    } else {
      server_.accumulate(update, weight);
      record.aggregate_weight += weight;
    }
    update = StateDict();  // folded; free it before anything else arrives
    --live[node_id];

    trace.weight = weight;
    trace.decision = net::evaluate_compression(
        out.stats.original_bytes, out.payload.size(),
        out.stats.compress_seconds, decode_stats.decompress_seconds,
        network_.link(i));
    record.train_seconds += out.train_seconds;
    record.compress_seconds += out.stats.compress_seconds;
    record.decompress_seconds += decode_stats.decompress_seconds;
    record.comm_seconds += flight.transfer_seconds;
    record.mean_loss += out.mean_loss;
    record.bytes_sent += out.payload.size();
    record.raw_bytes += out.stats.original_bytes;
    record.downlink_bytes += flight.downlink_bytes;
    record.downlink_raw_bytes += flight.downlink_raw_bytes;
    record.downlink_seconds += flight.downlink_seconds;
    record.downlink_encode_seconds += flight.downlink_encode_seconds;
    record.downlink_decode_seconds +=
        flight.downlink_decode_seconds + out.downlink_decode_seconds;
    record.mean_ef_residual_norm += out.ef_residual_norm;
    record.ef_decode_seconds += out.ef_decode_seconds;
    record.participants += 1;
    record.clients.push_back(std::move(trace));

    if (!tree_) {
      ++root_folded;
      if (root_folded >= root_goal) close_round();
    } else {
      ++nodes[0][e].folded;
      check_node(0, e);
    }
    if (!stopped && scheduler_->continuous()) {
      const auto snapshot =
          std::make_shared<const StateDict>(server_.global_state());
      if (downlink_) {
        // Continuous policies leave with the freshest global, so every
        // redispatch is its own (per-client) broadcast.
        send_to(i, completed, snapshot);
      } else {
        dispatch(i, completed, snapshot, nullptr);
      }
    }
  };

  // A node's re-encoded partial crossed its uplink: merge it one level up —
  // into its parent's streaming accumulator, or into the server when it
  // shipped from the top tier. Partials for a closed round or a parent that
  // already shipped merge nowhere (counted/traced, never totaled).
  on_partial = [&](std::size_t l, std::size_t n, int round, double transfer,
                   std::shared_ptr<const EncodedPartial> partial) {
    --partials_in_flight;
    if (stopped) return;
    if (round != completed) {
      ++result.late_events;
      return;
    }
    const std::size_t flat = tree_->flat_index(l, n);
    EdgeTraceEntry trace;
    trace.edge = flat;
    trace.tier = l + 1;
    trace.cohort = partial->clients;
    trace.weight = partial->weight;
    trace.payload_bytes = partial->payload.size();
    trace.raw_bytes = partial->stats.original_bytes;
    trace.encode_seconds = partial->stats.compress_seconds;
    trace.transfer_seconds = transfer;
    trace.arrival_seconds = queue.now();
    trace.downlink_bytes = node_downlink_bytes[flat];
    trace.downlink_seconds = node_downlink_seconds[flat];
    trace.ef_residual_norm = partial->ef_residual_norm;

    const bool at_root = l + 1 == levels;
    std::size_t parent = 0;
    std::size_t decode_node = 0;  // the root
    if (!at_root) {
      parent = tree_->parent_of(l, n);
      if (!nodes[l + 1][parent].open) {
        trace.status = DeliveryStatus::kLate;
        record.edges.push_back(std::move(trace));
        return;
      }
      decode_node = 1 + tree_->flat_index(l + 1, parent);
    }
    CompressionStats decode_stats;
    ++live[decode_node];
    peak[decode_node] = std::max(peak[decode_node], live[decode_node]);
    StateDict mean = tree_->decode_partial(
        l, {partial->payload.data(), partial->payload.size()}, &decode_stats);
    if (at_root) {
      server_.merge_partial(mean, partial->weight);
      record.aggregate_weight += partial->weight;
    } else {
      tree_->node(l + 1, parent).fold(mean, partial->weight,
                                      partial->clients);
    }
    mean = StateDict();  // merged; free it before anything else arrives
    --live[decode_node];

    trace.decode_seconds = decode_stats.decompress_seconds;
    record.backhaul_bytes += trace.payload_bytes;
    record.backhaul_raw_bytes += trace.raw_bytes;
    record.backhaul_seconds += transfer;
    record.backhaul_encode_seconds += trace.encode_seconds;
    record.backhaul_decode_seconds += trace.decode_seconds;
    record.backhaul_tier_bytes[l] += trace.payload_bytes;
    record.backhaul_tier_raw_bytes[l] += trace.raw_bytes;
    ++merged_partials;
    record.edges.push_back(std::move(trace));
    if (at_root) {
      ++root_folded;
      maybe_close_root();
    } else {
      ++nodes[l + 1][parent].folded;
      check_node(l + 1, parent);
    }
  };

  // The straggler deadline: every client still in flight is evicted (traced
  // with the marker), and open tier-1 edges force-ship what they have (or
  // withdraw empty-handed) — the cascade then resolves the upper tiers.
  evict_stragglers = [&] {
    const int round = completed;
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      if (phase[i] != Phase::kPending) continue;
      phase[i] = Phase::kEvicted;
      const InFlight& flight = flights[i];
      ClientTraceEntry trace;
      trace.client = i;
      trace.node = tree_ ? 1 + tree_->flat_index(0, owner_round[i]) : 0;
      trace.dispatch_round = flight.dispatch_round;
      trace.dispatch_seconds = flight.dispatch_seconds;
      trace.arrival_seconds = queue.now();  // when the server gave up
      trace.downlink_bytes = flight.downlink_bytes;
      trace.downlink_seconds = flight.downlink_seconds;
      trace.status = DeliveryStatus::kEvicted;
      if (population_) trace.device_class = population_->class_name(i);
      record.clients.push_back(std::move(trace));
    }
    if (!tree_) {
      root_goal = root_folded;
      maybe_close_root();
    } else {
      // Withdrawal cascades can close (and reopen) the round synchronously;
      // the round guard stops the sweep the moment that happens.
      for (std::size_t e = 0; e < edge_count && completed == round; ++e) {
        NodeRound& s = nodes[0][e];
        if (!s.participating || !s.open) continue;
        if (s.folded > 0)
          ship_node(0, e);
        else
          withdraw_node(0, e);
      }
    }
  };

  open_round = [&](bool initial) {
    record = RoundRecord{};
    record.round = completed;
    root_folded = 0;
    merged_partials = 0;
    server_.begin_round();
    if (scheduler_->continuous() && !initial) {
      // Clients redispatch themselves on arrival; just reset the buffer.
      root_goal = scheduler_->aggregation_goal(clients_.size());
      record.eligible_clients = clients_.size();
      return;
    }
    std::fill(phase.begin(), phase.end(), Phase::kIdle);
    std::fill(dropped.begin(), dropped.end(), 0);
    std::fill(eligible.begin(), eligible.end(), 1);
    // Zero-eligible fallback: when every availability draw failed,
    // deterministically wake the most-available client (tie-break lowest
    // index) so a campaign can never stall on an unlucky night. Consumes no
    // randomness, so the stream stays aligned with luckier trajectories.
    const auto ensure_some_eligible = [&] {
      if (!population_) return;
      for (std::size_t i = 0; i < clients_.size(); ++i)
        if (eligible[i]) return;
      std::size_t best = 0;
      double best_p = -1.0;
      for (std::size_t i = 0; i < clients_.size(); ++i) {
        const double p = population_->availability(i, queue.now());
        if (p > best_p) {
          best_p = p;
          best = i;
        }
      }
      eligible[best] = 1;
    };
    std::vector<std::size_t> cohort;
    if (tree_) {
      record.backhaul_tier_bytes.assign(levels, 0);
      record.backhaul_tier_raw_bytes.assign(levels, 0);
      std::fill(node_downlink_bytes.begin(), node_downlink_bytes.end(), 0);
      std::fill(node_downlink_seconds.begin(), node_downlink_seconds.end(),
                0.0);
      for (std::size_t l = 0; l < levels; ++l)
        for (std::size_t n = 0; n < nodes[l].size(); ++n) {
          // A buffered round can close with interior rounds still open;
          // abort leftovers before reopening.
          tree_->node(l, n).abort_round();
          nodes[l][n] = NodeRound{};
        }
      // Static shards first; this round's crash draws then re-shard the
      // victims' clients round-robin across the surviving siblings.
      for (std::size_t e = 0; e < edge_count; ++e)
        edge_members[e] = tree_->base_shards()[e];
      if (config_.failures.edge_failure_rate > 0.0) {
        std::vector<char> crashed(edge_count, 0);
        bool any_alive = false;
        for (std::size_t e = 0; e < edge_count; ++e) {
          crashed[e] =
              failure_rng.uniform() < config_.failures.edge_failure_rate;
          any_alive = any_alive || !crashed[e];
        }
        if (!any_alive) crashed[0] = 0;  // at least one edge survives
        std::vector<std::size_t> displaced;
        std::vector<std::size_t> alive;
        for (std::size_t e = 0; e < edge_count; ++e) {
          if (crashed[e]) {
            record.crashed_nodes.push_back(tree_->flat_index(0, e));
            displaced.insert(displaced.end(), edge_members[e].begin(),
                             edge_members[e].end());
            edge_members[e].clear();
          } else {
            alive.push_back(e);
          }
        }
        if (!displaced.empty()) {
          // Seeded shuffle so re-homing is deterministic but uncorrelated
          // with index order, then round-robin over the survivors.
          for (std::size_t k = displaced.size(); k > 1; --k)
            std::swap(displaced[k - 1],
                      displaced[failure_rng.uniform_index(k)]);
          for (std::size_t k = 0; k < displaced.size(); ++k)
            edge_members[alive[k % alive.size()]].push_back(displaced[k]);
        }
      }
      for (std::size_t e = 0; e < edge_count; ++e)
        for (const std::size_t i : edge_members[e]) owner_round[i] = e;
      if (population_) {
        // Availability draws in (edge order, member order) — exactly the
        // sequence the federation root replays, so both transports consume
        // the eligibility stream identically.
        for (std::size_t e = 0; e < edge_count; ++e)
          for (const std::size_t i : edge_members[e])
            eligible[i] = eligibility_rng.uniform() <
                          population_->availability(i, queue.now());
        ensure_some_eligible();
      }
      // Per-cohort sampling: the scheduler draws within each edge's member
      // set (cohort-relative indices) in edge order — the same stream and
      // order as the single-tier runtime when nothing crashed. With a
      // population active the member set shrinks to the eligible clients
      // BEFORE the draw (the scheduler never sees offline devices).
      root_goal = 0;
      for (std::size_t e = 0; e < edge_count; ++e) {
        edge_cohort[e].clear();
        if (edge_members[e].empty()) continue;
        std::vector<std::size_t> pool;
        if (population_) {
          for (const std::size_t i : edge_members[e])
            if (eligible[i]) pool.push_back(i);
        } else {
          pool = edge_members[e];
        }
        if (pool.empty()) continue;
        const std::vector<std::size_t> draw =
            scheduler_->cohort(completed, pool.size(), cohort_rng);
        if (draw.empty()) continue;
        NodeRound& s = nodes[0][e];
        s.participating = s.open = true;
        s.expected = draw.size();
        tree_->node(0, e).begin_round(server_.global_state());
        for (const std::size_t idx : draw)
          edge_cohort[e].push_back(pool[idx]);
      }
      // Upper tiers participate when anything below them does; their
      // expectation is the participating child count.
      for (std::size_t l = 1; l < levels; ++l) {
        for (auto& part : children_part[l]) part.clear();
        for (std::size_t c = 0; c < nodes[l - 1].size(); ++c)
          if (nodes[l - 1][c].participating)
            children_part[l][tree_->parent_of(l - 1, c)].push_back(c);
        for (std::size_t n = 0; n < nodes[l].size(); ++n) {
          if (children_part[l][n].empty()) continue;
          NodeRound& s = nodes[l][n];
          s.participating = s.open = true;
          s.expected = children_part[l][n].size();
          tree_->node(l, n).begin_round(server_.global_state());
        }
      }
      for (std::size_t n = 0; n < nodes[levels - 1].size(); ++n)
        if (nodes[levels - 1][n].participating) ++root_goal;
      for (std::size_t e = 0; e < edge_count; ++e)
        cohort.insert(cohort.end(), edge_cohort[e].begin(),
                      edge_cohort[e].end());
    } else {
      if (population_) {
        for (std::size_t i = 0; i < clients_.size(); ++i)
          eligible[i] = eligibility_rng.uniform() <
                        population_->availability(i, queue.now());
        ensure_some_eligible();
        std::vector<std::size_t> pool;
        for (std::size_t i = 0; i < clients_.size(); ++i)
          if (eligible[i]) pool.push_back(i);
        const std::vector<std::size_t> draw =
            scheduler_->cohort(completed, pool.size(), cohort_rng);
        cohort.reserve(draw.size());
        for (const std::size_t idx : draw) cohort.push_back(pool[idx]);
      } else {
        cohort = scheduler_->cohort(completed, clients_.size(), cohort_rng);
      }
      root_goal = scheduler_->aggregation_goal(cohort.size());
    }
    if (population_) {
      for (std::size_t i = 0; i < clients_.size(); ++i) {
        if (eligible[i]) {
          ++record.eligible_clients;
          continue;
        }
        ++record.ineligible_clients;
        // Offline devices stay visible in the per-round export: one
        // weight-0 entry each, appended in client order at round open (the
        // same order the federation root emits them).
        ClientTraceEntry trace;
        trace.client = i;
        trace.node = tree_ ? 1 + tree_->flat_index(0, owner_round[i]) : 0;
        trace.dispatch_round = completed;
        trace.dispatch_seconds = queue.now();
        trace.arrival_seconds = queue.now();
        trace.status = DeliveryStatus::kIneligible;
        trace.device_class = population_->class_name(i);
        trace.eligible = false;
        record.clients.push_back(std::move(trace));
      }
    } else {
      record.eligible_clients = clients_.size();
    }
    if (config_.failures.dropout_rate > 0.0)
      for (const std::size_t i : cohort)
        dropped[i] =
            failure_rng.uniform() < config_.failures.dropout_rate;
    // Population mid-round offline draws ride the eligibility stream (one
    // unconditional draw per cohort member, so the stream advances the same
    // way whatever the outcomes) and surface through the existing dropout
    // machinery.
    if (population_ && population_->config().dropout_rate > 0.0)
      for (const std::size_t i : cohort)
        if (eligibility_rng.uniform() < population_->config().dropout_rate)
          dropped[i] = 1;
    if (config_.failures.straggler_deadline_seconds > 0.0)
      queue.schedule_after(config_.failures.straggler_deadline_seconds,
                           [&, round = completed] {
                             if (!stopped && round == completed)
                               evict_stragglers();
                           });
    if (cohort.empty()) {
      // Every draw came back empty: nothing will ever arrive, so close on
      // a zero-delay event (the pump still has to see the round).
      queue.schedule_after(0.0, [&, round = completed] {
        if (!stopped && round == completed) close_round();
      });
      return;
    }
    const auto snapshot =
        std::make_shared<const StateDict>(server_.global_state());
    if (!downlink_) {
      // Free lossless broadcast: clients start on the exact global at once.
      for (const std::size_t i : cohort)
        dispatch(i, completed, snapshot, nullptr);
    } else if (downlink_->mode() == DownlinkMode::kFull) {
      broadcast_to(cohort, completed, snapshot);
    } else {
      for (const std::size_t i : cohort) send_to(i, completed, snapshot);
    }
  };

  // Resume: restore everything a checkpoint captured before the first
  // round opens. The remaining rounds then replay the exact event sequence
  // of an uninterrupted run — same RNG streams mid-sequence, same clock,
  // same tie-break counter — so the finished trajectory is bit-identical.
  if (config_.resume && !config_.checkpoint_path.empty()) {
    if (std::optional<CheckpointState> loaded =
            read_checkpoint(config_.checkpoint_path)) {
      CheckpointState& ck = *loaded;
      if (ck.config_fingerprint != run_fingerprint(config_, model_config_))
        throw InvalidArgument(
            "FlCoordinator: checkpoint at '" + config_.checkpoint_path +
            "' was written by a differently-configured run");
      if (ck.aggregator_name != server_.aggregator().name())
        throw InvalidArgument("FlCoordinator: checkpoint aggregator '" +
                              ck.aggregator_name + "' does not match '" +
                              server_.aggregator().name() + "'");
      if (ck.client_residuals.size() != feedback_.size())
        throw CorruptStream(
            "checkpoint: client residual count does not match the run");
      server_.restore_global_state(std::move(ck.global_state));
      ByteReader aggregator_in(
          {ck.aggregator_state.data(), ck.aggregator_state.size()});
      server_.aggregator().load_state(aggregator_in);
      cohort_rng.restore(ck.cohort_rng);
      failure_rng.restore(ck.failure_rng);
      eligibility_rng.restore(ck.eligibility_rng);
      for (std::size_t i = 0; i < feedback_.size(); ++i)
        feedback_[i].restore_residual(std::move(ck.client_residuals[i]));
      if (downlink_ && downlink_->mode() == DownlinkMode::kDelta)
        downlink_->restore_sessions(std::move(ck.downlink_sessions));
      if (tree_ && config_.topology.edge_error_feedback) {
        if (ck.edge_residuals.size() != interior)
          throw CorruptStream(
              "checkpoint: edge residual count does not match the tree");
        std::size_t flat = 0;
        for (std::size_t l = 0; l < levels; ++l)
          for (std::size_t n = 0; n < tree_->level_size(l); ++n)
            tree_->node(l, n).feedback().restore_residual(
                std::move(ck.edge_residuals[flat++]));
      }
      completed = static_cast<int>(ck.completed_rounds);
      queue.restore_clock(ck.virtual_now, ck.clock_next_seq);
      if (completed >= config_.rounds) {
        // The checkpointed campaign already finished; nothing to replay.
        result.total_wall_seconds = wall.seconds();
        result.total_virtual_seconds = queue.now();
        result.peak_decoded_per_node = std::move(peak);
        return result;
      }
    }
    // No checkpoint on disk yet (killed before the first save): run fresh.
  }

  open_round(true);
  while (!stopped && queue.run_next()) {
  }
  // A buffered ancestor can ship early enough that the run's final close
  // leaves weighted partials mid-transfer; their arrival events never run,
  // so account for them here.
  result.late_events += partials_in_flight;

  result.final_accuracy =
      result.rounds.empty() ? 0.0 : result.rounds.back().accuracy;
  result.peak_decoded_updates = peak[0];
  result.peak_decoded_per_node = std::move(peak);
  result.total_virtual_seconds = queue.now();
  result.total_wall_seconds = wall.seconds();
  return result;
  // ~ThreadPool drains any still-running client tasks (async policies stop
  // mid-flight once the configured number of aggregations completes).
}

}  // namespace fedsz::core

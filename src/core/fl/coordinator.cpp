#include "core/fl/coordinator.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <future>
#include <memory>

#include "net/virtual_clock.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace fedsz::core {

void FlRunConfig::validate() const {
  if (clients == 0)
    throw InvalidArgument("FlRunConfig: need at least one client");
  if (rounds <= 0) throw InvalidArgument("FlRunConfig: rounds must be >= 1");
  if (threads == 0) throw InvalidArgument("FlRunConfig: threads must be >= 1");
  if (!(compute_seconds_per_sample >= 0.0) ||
      !std::isfinite(compute_seconds_per_sample))
    throw InvalidArgument(
        "FlRunConfig: compute_seconds_per_sample must be finite and >= 0");
  if (!(compute_jitter >= 0.0) || compute_jitter >= 1.0)
    throw InvalidArgument("FlRunConfig: compute_jitter must be in [0, 1)");
  if (client.local_epochs <= 0)
    throw InvalidArgument("FlRunConfig: local_epochs must be >= 1");
  if (client.batch_size == 0)
    throw InvalidArgument("FlRunConfig: batch_size must be >= 1");
}

namespace {

FlRunConfig validated(FlRunConfig config) {
  config.validate();
  return config;
}

net::HeterogeneousNetwork build_network(const FlRunConfig& config) {
  if (config.heterogeneous)
    return net::HeterogeneousNetwork(*config.heterogeneous, config.clients);
  return net::HeterogeneousNetwork::homogeneous(config.network,
                                                config.clients);
}

}  // namespace

FlCoordinator::FlCoordinator(const nn::ModelConfig& model_config,
                             data::DatasetPtr train, data::DatasetPtr test,
                             FlRunConfig config, UpdateCodecPtr codec,
                             SchedulerPtr scheduler)
    : model_config_(model_config),
      test_(std::move(test)),
      config_(validated(std::move(config))),
      codec_(std::move(codec)),
      scheduler_(scheduler ? std::move(scheduler) : make_sync_scheduler()),
      server_(model_config),
      network_(build_network(config_)) {
  if (!codec_) throw InvalidArgument("FlCoordinator: null update codec");
  Rng rng(config_.seed);
  const auto shards = data::partition_iid(train->size(), config_.clients, rng);
  Rng speed_rng(config_.seed ^ 0xC0DEC10Cull);
  compute_seconds_.reserve(config_.clients);
  for (std::size_t i = 0; i < config_.clients; ++i) {
    ClientConfig client_config = config_.client;
    client_config.seed = config_.seed ^ (0xC11E47ull * (i + 1));
    clients_.push_back(std::make_unique<FlClient>(
        static_cast<int>(i), model_config_,
        std::make_shared<data::SubsetDataset>(train, shards[i]),
        client_config));
    // Deterministic virtual training time: proportional to the shard, with
    // an optional per-client speed spread (heterogeneous devices).
    const double factor = speed_rng.uniform(1.0 - config_.compute_jitter,
                                            1.0 + config_.compute_jitter);
    compute_seconds_.push_back(
        config_.compute_seconds_per_sample *
        static_cast<double>(shards[i].size()) *
        static_cast<double>(config_.client.local_epochs) * factor);
  }
}

FlRunResult FlCoordinator::run() {
  Timer wall;
  FlRunResult result;
  result.scheduler = scheduler_->name();

  // What a dispatched client hands back once its real work (local SGD +
  // update encoding on the pool) completes.
  struct WorkerOut {
    Bytes payload;
    std::size_t samples = 0;
    CompressionStats stats;  // the encode pass (bytes, plan census, timing)
    double train_seconds = 0.0;
    double mean_loss = 0.0;
  };
  // One slot per client; a client has at most one update in flight.
  struct InFlight {
    std::future<WorkerOut> future;
    WorkerOut out;
    int dispatch_round = 0;
    double dispatch_seconds = 0.0;
    double transfer_seconds = 0.0;
  };

  net::EventQueue queue;
  std::vector<InFlight> flights(clients_.size());
  Rng cohort_rng(config_.seed ^ 0x5C4ED11Eull);
  int completed = 0;        // aggregations finished so far
  std::size_t folded = 0;   // updates folded since the round opened
  std::size_t goal = 0;     // arrivals that trigger the next aggregation
  std::size_t live_decoded = 0;
  bool stopped = false;
  RoundRecord record;
  ThreadPool pool(std::max<std::size_t>(1, config_.threads));

  using Snapshot = std::shared_ptr<const StateDict>;
  std::function<void(std::size_t, int, Snapshot)> dispatch;
  std::function<void(std::size_t)> on_upload;
  std::function<void(std::size_t)> on_arrival;
  std::function<void(bool)> open_round;

  // Hand the client a snapshot of the global (barrier cohorts share one
  // copy; async policies mutate the global mid-flight, so redispatches take
  // their own), start its real work on the pool, and mark the moment its
  // virtual compute finishes. The EncodeContext pins the dispatch round and
  // client id so round-/client-aware compression policies resolve their
  // per-update plans.
  dispatch = [&](std::size_t i, int round, Snapshot snapshot) {
    InFlight& flight = flights[i];
    flight.dispatch_round = round;
    flight.dispatch_seconds = queue.now();
    FlClient* client = clients_[i].get();
    const UpdateCodec* codec = codec_.get();
    flight.future =
        pool.submit([client, codec, snapshot, i, round]() -> WorkerOut {
          ClientRoundResult round_result = client->run_round(*snapshot);
          EncodeContext ctx;
          ctx.round = round;
          ctx.client_id = static_cast<int>(i);
          ctx.steps = round_result.steps;
          UpdateCodec::Encoded encoded =
              codec->encode(round_result.update, ctx);
          WorkerOut out;
          out.samples = round_result.samples;
          out.stats = encoded.stats;
          out.train_seconds = round_result.train_seconds;
          out.mean_loss = round_result.mean_loss;
          out.payload = std::move(encoded.payload);
          return out;
        });
    queue.schedule_after(compute_seconds_[i], [&, i] { on_upload(i); });
  };

  // Virtual compute done: collect the encoded update (waiting for the real
  // work if it is still running) and put it on this client's link.
  on_upload = [&](std::size_t i) {
    InFlight& flight = flights[i];
    flight.out = flight.future.get();
    flight.transfer_seconds =
        network_.link(i).transfer_seconds(flight.out.payload.size());
    queue.schedule_after(flight.transfer_seconds, [&, i] { on_arrival(i); });
  };

  open_round = [&](bool initial) {
    record = RoundRecord{};
    record.round = completed;
    folded = 0;
    server_.begin_round();
    if (scheduler_->continuous() && !initial) {
      // Clients redispatch themselves on arrival; just reset the buffer.
      goal = scheduler_->aggregation_goal(clients_.size());
      return;
    }
    const std::vector<std::size_t> cohort =
        scheduler_->cohort(completed, clients_.size(), cohort_rng);
    goal = scheduler_->aggregation_goal(cohort.size());
    const auto snapshot =
        std::make_shared<const StateDict>(server_.global_state());
    for (const std::size_t i : cohort) dispatch(i, completed, snapshot);
  };

  // An update reached the server: decode it (serially — at most one decoded
  // update is ever alive), fold it into the streaming aggregator, score the
  // Eqn (1) decision against this client's own link, and aggregate once the
  // scheduler's buffer goal is met.
  on_arrival = [&](std::size_t i) {
    InFlight& flight = flights[i];
    WorkerOut out = std::move(flight.out);
    flight.out = WorkerOut{};
    CompressionStats decode_stats;
    StateDict update = codec_->decode({out.payload.data(), out.payload.size()},
                                      &decode_stats);
    ++live_decoded;
    result.peak_decoded_updates =
        std::max(result.peak_decoded_updates, live_decoded);
    const double weight =
        static_cast<double>(out.samples) *
        scheduler_->staleness_scale(flight.dispatch_round, completed);
    server_.accumulate(update, weight);
    update = StateDict();  // folded; free it before anything else arrives
    --live_decoded;

    ClientTraceEntry trace;
    trace.client = i;
    trace.dispatch_round = flight.dispatch_round;
    trace.dispatch_seconds = flight.dispatch_seconds;
    trace.arrival_seconds = queue.now();
    trace.transfer_seconds = flight.transfer_seconds;
    trace.weight = weight;
    trace.payload_bytes = out.payload.size();
    trace.raw_bytes = out.stats.original_bytes;
    trace.bound_value = out.stats.mean_bound_value;
    trace.lossy_tensors = out.stats.lossy_tensors;
    trace.lossless_tensors = out.stats.lossless_tensors;
    trace.raw_tensors = out.stats.raw_tensors;
    trace.decision = net::evaluate_compression(
        out.stats.original_bytes, out.payload.size(),
        out.stats.compress_seconds, decode_stats.decompress_seconds,
        network_.link(i));
    record.train_seconds += out.train_seconds;
    record.compress_seconds += out.stats.compress_seconds;
    record.decompress_seconds += decode_stats.decompress_seconds;
    record.comm_seconds += flight.transfer_seconds;
    record.mean_loss += out.mean_loss;
    record.bytes_sent += out.payload.size();
    record.raw_bytes += out.stats.original_bytes;
    record.participants += 1;
    record.clients.push_back(std::move(trace));

    if (++folded >= goal) {
      server_.finalize_round();
      const double inv = 1.0 / static_cast<double>(record.participants);
      record.train_seconds *= inv;
      record.compress_seconds *= inv;
      record.decompress_seconds *= inv;
      record.comm_seconds *= inv;
      record.mean_loss *= inv;
      record.virtual_seconds = queue.now();
      if (config_.evaluate_every_round || completed + 1 == config_.rounds) {
        Timer eval_timer;
        record.accuracy = server_.evaluate(*test_, config_.eval_limit);
        record.eval_seconds = eval_timer.seconds();
      }
      result.rounds.push_back(std::move(record));
      ++completed;
      if (completed >= config_.rounds)
        stopped = true;
      else
        open_round(false);
    }
    if (!stopped && scheduler_->continuous())
      dispatch(i, completed,
               std::make_shared<const StateDict>(server_.global_state()));
  };

  open_round(true);
  while (!stopped && queue.run_next()) {
  }

  result.final_accuracy =
      result.rounds.empty() ? 0.0 : result.rounds.back().accuracy;
  result.total_virtual_seconds = queue.now();
  result.total_wall_seconds = wall.seconds();
  return result;
  // ~ThreadPool drains any still-running client tasks (async policies stop
  // mid-flight once the configured number of aggregations completes).
}

}  // namespace fedsz::core

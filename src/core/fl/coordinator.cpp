#include "core/fl/coordinator.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <future>
#include <memory>

#include "core/codec_spec.hpp"
#include "net/virtual_clock.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace fedsz::core {

void FlRunConfig::apply_comm_spec(const CodecSpec& spec) {
  downlink_spec = spec.downlink;
  downlink_mode =
      spec.downlink_delta ? DownlinkMode::kDelta : DownlinkMode::kFull;
  error_feedback = spec.error_feedback;
}

void FlRunConfig::validate() const {
  if (clients == 0)
    throw InvalidArgument("FlRunConfig: need at least one client");
  if (rounds <= 0) throw InvalidArgument("FlRunConfig: rounds must be >= 1");
  if (threads == 0) throw InvalidArgument("FlRunConfig: threads must be >= 1");
  if (!(compute_seconds_per_sample >= 0.0) ||
      !std::isfinite(compute_seconds_per_sample))
    throw InvalidArgument(
        "FlRunConfig: compute_seconds_per_sample must be finite and >= 0");
  if (!(compute_jitter >= 0.0) || compute_jitter >= 1.0)
    throw InvalidArgument("FlRunConfig: compute_jitter must be in [0, 1)");
  if (client.local_epochs <= 0)
    throw InvalidArgument("FlRunConfig: local_epochs must be >= 1");
  if (client.batch_size == 0)
    throw InvalidArgument("FlRunConfig: batch_size must be >= 1");
  if (!downlink_spec.empty()) {
    // Malformed specs throw InvalidArgument from the parser itself.
    const CodecSpec spec = parse_codec_spec(downlink_spec);
    if (!spec.downlink.empty() || spec.downlink_delta || spec.error_feedback)
      throw InvalidArgument(
          "FlRunConfig: downlink_spec cannot itself carry "
          "downlink/downmode/ef keys");
  } else if (downlink_mode == DownlinkMode::kDelta) {
    // Catch the downmode=delta-without-downlink= mistake loudly instead of
    // silently running with a free lossless broadcast.
    throw InvalidArgument(
        "FlRunConfig: downlink_mode=kDelta requires a downlink_spec");
  }
}

namespace {

FlRunConfig validated(FlRunConfig config) {
  config.validate();
  return config;
}

net::HeterogeneousNetwork build_network(const FlRunConfig& config) {
  if (config.heterogeneous)
    return net::HeterogeneousNetwork(*config.heterogeneous, config.clients);
  return net::HeterogeneousNetwork::homogeneous(config.network,
                                                config.clients);
}

}  // namespace

FlCoordinator::FlCoordinator(const nn::ModelConfig& model_config,
                             data::DatasetPtr train, data::DatasetPtr test,
                             FlRunConfig config, UpdateCodecPtr codec,
                             SchedulerPtr scheduler)
    : model_config_(model_config),
      test_(std::move(test)),
      config_(validated(std::move(config))),
      codec_(std::move(codec)),
      scheduler_(scheduler ? std::move(scheduler) : make_sync_scheduler()),
      server_(model_config),
      network_(build_network(config_)) {
  if (!codec_) throw InvalidArgument("FlCoordinator: null update codec");
  if (!config_.downlink_spec.empty())
    downlink_ = std::make_unique<DownlinkChannel>(
        DownlinkConfig{config_.downlink_mode,
                       make_codec(parse_codec_spec(config_.downlink_spec))},
        config_.clients);
  feedback_.resize(config_.clients);
  Rng rng(config_.seed);
  const auto shards = data::partition_iid(train->size(), config_.clients, rng);
  Rng speed_rng(config_.seed ^ 0xC0DEC10Cull);
  compute_seconds_.reserve(config_.clients);
  for (std::size_t i = 0; i < config_.clients; ++i) {
    ClientConfig client_config = config_.client;
    client_config.seed = config_.seed ^ (0xC11E47ull * (i + 1));
    clients_.push_back(std::make_unique<FlClient>(
        static_cast<int>(i), model_config_,
        std::make_shared<data::SubsetDataset>(train, shards[i]),
        client_config));
    // Deterministic virtual training time: proportional to the shard, with
    // an optional per-client speed spread (heterogeneous devices).
    const double factor = speed_rng.uniform(1.0 - config_.compute_jitter,
                                            1.0 + config_.compute_jitter);
    compute_seconds_.push_back(
        config_.compute_seconds_per_sample *
        static_cast<double>(shards[i].size()) *
        static_cast<double>(config_.client.local_epochs) * factor);
  }
}

FlRunResult FlCoordinator::run() {
  Timer wall;
  FlRunResult result;
  result.scheduler = scheduler_->name();

  // What a dispatched client hands back once its real work (broadcast
  // decode + local SGD + update encoding on the pool) completes.
  struct WorkerOut {
    Bytes payload;
    std::size_t samples = 0;
    CompressionStats stats;  // the encode pass (bytes, plan census, timing)
    double train_seconds = 0.0;
    double mean_loss = 0.0;
    double downlink_decode_seconds = 0.0;  // per-client broadcast decode
    double ef_residual_norm = 0.0;         // after this update's encode
    double ef_decode_seconds = 0.0;  // decoding own payload for the residual
  };
  // One slot per client; a client has at most one update in flight.
  struct InFlight {
    std::future<WorkerOut> future;
    WorkerOut out;
    int dispatch_round = 0;
    double dispatch_seconds = 0.0;
    double transfer_seconds = 0.0;
    // Downlink leg (zeros when the broadcast is free/lossless).
    std::size_t downlink_bytes = 0;
    std::size_t downlink_raw_bytes = 0;
    double downlink_seconds = 0.0;
    double downlink_encode_seconds = 0.0;
    double downlink_decode_seconds = 0.0;  // kFull shared decode
  };

  net::EventQueue queue;
  std::vector<InFlight> flights(clients_.size());
  Rng cohort_rng(config_.seed ^ 0x5C4ED11Eull);
  int completed = 0;        // aggregations finished so far
  std::size_t folded = 0;   // updates folded since the round opened
  std::size_t goal = 0;     // arrivals that trigger the next aggregation
  std::size_t live_decoded = 0;
  bool stopped = false;
  RoundRecord record;

  using Snapshot = std::shared_ptr<const StateDict>;
  using PayloadPtr = std::shared_ptr<const Bytes>;

  // The client's real work, run on the pool: decode the broadcast payload
  // when one was delivered (per-client path), train on the resulting model,
  // fold in the error-feedback residual, encode, and — with EF on — absorb
  // what the encoder dropped (reconstruction read back from the payload)
  // into the residual carried to the next round. Per-client state
  // (feedback_[i], downlink session i) is safe without locks because a
  // client never has two tasks alive at once.
  // EF against a lossless uplink is provably a zero residual forever; skip
  // the per-round payload decode and residual passes outright.
  const bool ef_on = config_.error_feedback && !codec_->lossless();
  auto client_work = [this, ef_on](std::size_t i, int round, Snapshot model,
                                   PayloadPtr broadcast) -> WorkerOut {
    WorkerOut out;
    StateDict decoded_model;
    const StateDict* train_on = model.get();
    if (broadcast) {
      CompressionStats downlink_stats;
      const ByteSpan span{broadcast->data(), broadcast->size()};
      decoded_model = downlink_->mode() == DownlinkMode::kDelta
                          ? downlink_->receive(i, span, &downlink_stats)
                          : downlink_->decode_broadcast(span, &downlink_stats);
      out.downlink_decode_seconds = downlink_stats.decompress_seconds;
      train_on = &decoded_model;
    }
    ClientRoundResult round_result = clients_[i]->run_round(*train_on);
    EncodeContext ctx;
    ctx.round = round;
    ctx.client_id = static_cast<int>(i);
    ctx.steps = round_result.steps;
    StateDict update = std::move(round_result.update);
    if (ef_on) update = feedback_[i].apply(update);
    UpdateCodec::Encoded encoded = codec_->encode(update, ctx);
    if (ef_on) {
      // The server will decode exactly this; what it misses is carried over.
      CompressionStats ef_stats;
      const StateDict reconstruction = codec_->decode(
          {encoded.payload.data(), encoded.payload.size()}, &ef_stats);
      feedback_[i].absorb(update, reconstruction);
      out.ef_residual_norm = feedback_[i].residual_norm();
      out.ef_decode_seconds = ef_stats.decompress_seconds;
    }
    out.samples = round_result.samples;
    out.stats = encoded.stats;
    out.train_seconds = round_result.train_seconds;
    out.mean_loss = round_result.mean_loss;
    out.payload = std::move(encoded.payload);
    return out;
  };

  // Declared after client_work (and the flight/record state above) so the
  // pool destructor can still drain in-flight tasks that reference them.
  ThreadPool pool(std::max<std::size_t>(1, config_.threads));
  std::function<void(std::size_t, int, Snapshot, PayloadPtr)> dispatch;
  std::function<void(std::size_t, int, Snapshot)> send_to;
  std::function<void(const std::vector<std::size_t>&, int, Snapshot)>
      broadcast_to;
  std::function<void(std::size_t)> on_upload;
  std::function<void(std::size_t)> on_arrival;
  std::function<void(bool)> open_round;

  // Start a client's real work on the pool and its virtual compute timer.
  // `model` is the state it trains on (the global snapshot, or the shared
  // kFull broadcast reconstruction); `broadcast` (per-client downlink path)
  // makes the worker decode its own payload first. The EncodeContext pins
  // the dispatch round and client id so round-/client-aware compression
  // policies resolve their per-update plans.
  dispatch = [&](std::size_t i, int round, Snapshot model,
                 PayloadPtr broadcast) {
    InFlight& flight = flights[i];
    flight.dispatch_round = round;
    flight.dispatch_seconds = queue.now();
    flight.future = pool.submit([&client_work, i, round, model, broadcast] {
      return client_work(i, round, std::move(model), std::move(broadcast));
    });
    queue.schedule_after(compute_seconds_[i], [&, i] { on_upload(i); });
  };

  // Per-client downlink: encode this client's broadcast on the pool (the
  // whole global, or its session delta in kDelta mode), then charge the
  // payload against the client's own link before its compute may start.
  // Used for kDelta cohorts and for continuous-scheduler redispatches,
  // where each client leaves with a different global.
  send_to = [&](std::size_t i, int round, Snapshot snapshot) {
    const bool delta = downlink_->mode() == DownlinkMode::kDelta;
    auto pending = std::make_shared<std::future<BroadcastPayload>>(
        pool.submit([this, delta, i, round, snapshot] {
          return delta ? downlink_->encode_for_client(i, *snapshot, round)
                       : downlink_->encode_broadcast(*snapshot, round);
        }));
    queue.schedule_after(0.0, [&, i, round, pending] {
      BroadcastPayload broadcast = pending->get();
      InFlight& flight = flights[i];
      auto payload = std::make_shared<const Bytes>(
          std::move(broadcast.payload));
      flight.downlink_bytes = payload->size();
      flight.downlink_raw_bytes = broadcast.stats.original_bytes;
      flight.downlink_encode_seconds = broadcast.stats.compress_seconds;
      flight.downlink_decode_seconds = 0.0;
      flight.downlink_seconds =
          network_.link(i).transfer_seconds(payload->size());
      queue.schedule_after(flight.downlink_seconds, [&, i, round, payload] {
        dispatch(i, round, nullptr, payload);
      });
    });
  };

  // kFull cohort broadcast: encode the global ONCE on the pool (overlapped
  // with the event pump), decode it once — every client reconstructs the
  // same model — and charge the same payload bytes against each client's
  // own link. The hot path never serializes per client.
  broadcast_to = [&](const std::vector<std::size_t>& cohort, int round,
                     Snapshot snapshot) {
    struct BroadcastReady {
      Bytes payload;
      CompressionStats stats;
      Snapshot model;  // the shared reconstruction clients train on
      double decode_seconds = 0.0;
    };
    auto pending = std::make_shared<std::future<BroadcastReady>>(
        pool.submit([this, round, snapshot]() -> BroadcastReady {
          BroadcastReady ready;
          BroadcastPayload broadcast =
              downlink_->encode_broadcast(*snapshot, round);
          CompressionStats decode_stats;
          ready.model = std::make_shared<const StateDict>(
              downlink_->decode_broadcast(
                  {broadcast.payload.data(), broadcast.payload.size()},
                  &decode_stats));
          ready.payload = std::move(broadcast.payload);
          ready.stats = broadcast.stats;
          ready.decode_seconds = decode_stats.decompress_seconds;
          return ready;
        }));
    queue.schedule_after(0.0, [&, cohort, round, pending] {
      const BroadcastReady ready = pending->get();
      for (const std::size_t i : cohort) {
        InFlight& flight = flights[i];
        flight.downlink_bytes = ready.payload.size();
        flight.downlink_raw_bytes = ready.stats.original_bytes;
        flight.downlink_encode_seconds = ready.stats.compress_seconds;
        flight.downlink_decode_seconds = ready.decode_seconds;
        flight.downlink_seconds =
            network_.link(i).transfer_seconds(ready.payload.size());
        queue.schedule_after(flight.downlink_seconds,
                             [&, i, round, model = ready.model] {
                               dispatch(i, round, model, nullptr);
                             });
      }
    });
  };

  // Virtual compute done: collect the encoded update (waiting for the real
  // work if it is still running) and put it on this client's link.
  on_upload = [&](std::size_t i) {
    InFlight& flight = flights[i];
    flight.out = flight.future.get();
    flight.transfer_seconds =
        network_.link(i).transfer_seconds(flight.out.payload.size());
    queue.schedule_after(flight.transfer_seconds, [&, i] { on_arrival(i); });
  };

  open_round = [&](bool initial) {
    record = RoundRecord{};
    record.round = completed;
    folded = 0;
    server_.begin_round();
    if (scheduler_->continuous() && !initial) {
      // Clients redispatch themselves on arrival; just reset the buffer.
      goal = scheduler_->aggregation_goal(clients_.size());
      return;
    }
    const std::vector<std::size_t> cohort =
        scheduler_->cohort(completed, clients_.size(), cohort_rng);
    goal = scheduler_->aggregation_goal(cohort.size());
    const auto snapshot =
        std::make_shared<const StateDict>(server_.global_state());
    if (!downlink_) {
      // Free lossless broadcast: clients start on the exact global at once.
      for (const std::size_t i : cohort) dispatch(i, completed, snapshot,
                                                  nullptr);
    } else if (downlink_->mode() == DownlinkMode::kFull) {
      broadcast_to(cohort, completed, snapshot);
    } else {
      for (const std::size_t i : cohort) send_to(i, completed, snapshot);
    }
  };

  // An update reached the server: decode it (serially — at most one decoded
  // update is ever alive), fold it into the streaming aggregator, score the
  // Eqn (1) decision against this client's own link, and aggregate once the
  // scheduler's buffer goal is met.
  on_arrival = [&](std::size_t i) {
    InFlight& flight = flights[i];
    WorkerOut out = std::move(flight.out);
    flight.out = WorkerOut{};
    CompressionStats decode_stats;
    StateDict update = codec_->decode({out.payload.data(), out.payload.size()},
                                      &decode_stats);
    ++live_decoded;
    result.peak_decoded_updates =
        std::max(result.peak_decoded_updates, live_decoded);
    const double weight =
        static_cast<double>(out.samples) *
        scheduler_->staleness_scale(flight.dispatch_round, completed);
    server_.accumulate(update, weight);
    update = StateDict();  // folded; free it before anything else arrives
    --live_decoded;

    ClientTraceEntry trace;
    trace.client = i;
    trace.dispatch_round = flight.dispatch_round;
    trace.dispatch_seconds = flight.dispatch_seconds;
    trace.arrival_seconds = queue.now();
    trace.transfer_seconds = flight.transfer_seconds;
    trace.weight = weight;
    trace.payload_bytes = out.payload.size();
    trace.raw_bytes = out.stats.original_bytes;
    trace.bound_value = out.stats.mean_bound_value;
    trace.lossy_tensors = out.stats.lossy_tensors;
    trace.lossless_tensors = out.stats.lossless_tensors;
    trace.raw_tensors = out.stats.raw_tensors;
    trace.downlink_bytes = flight.downlink_bytes;
    trace.downlink_seconds = flight.downlink_seconds;
    trace.ef_residual_norm = out.ef_residual_norm;
    trace.decision = net::evaluate_compression(
        out.stats.original_bytes, out.payload.size(),
        out.stats.compress_seconds, decode_stats.decompress_seconds,
        network_.link(i));
    record.train_seconds += out.train_seconds;
    record.compress_seconds += out.stats.compress_seconds;
    record.decompress_seconds += decode_stats.decompress_seconds;
    record.comm_seconds += flight.transfer_seconds;
    record.mean_loss += out.mean_loss;
    record.bytes_sent += out.payload.size();
    record.raw_bytes += out.stats.original_bytes;
    record.downlink_bytes += flight.downlink_bytes;
    record.downlink_raw_bytes += flight.downlink_raw_bytes;
    record.downlink_seconds += flight.downlink_seconds;
    record.downlink_encode_seconds += flight.downlink_encode_seconds;
    record.downlink_decode_seconds +=
        flight.downlink_decode_seconds + out.downlink_decode_seconds;
    record.mean_ef_residual_norm += out.ef_residual_norm;
    record.ef_decode_seconds += out.ef_decode_seconds;
    record.participants += 1;
    record.clients.push_back(std::move(trace));

    if (++folded >= goal) {
      server_.finalize_round();
      const double inv = 1.0 / static_cast<double>(record.participants);
      record.train_seconds *= inv;
      record.compress_seconds *= inv;
      record.decompress_seconds *= inv;
      record.comm_seconds *= inv;
      record.mean_loss *= inv;
      record.downlink_seconds *= inv;
      record.downlink_encode_seconds *= inv;
      record.downlink_decode_seconds *= inv;
      record.mean_ef_residual_norm *= inv;
      record.ef_decode_seconds *= inv;
      record.virtual_seconds = queue.now();
      if (config_.evaluate_every_round || completed + 1 == config_.rounds) {
        Timer eval_timer;
        record.accuracy = server_.evaluate(*test_, config_.eval_limit);
        record.eval_seconds = eval_timer.seconds();
      }
      result.rounds.push_back(std::move(record));
      ++completed;
      if (completed >= config_.rounds)
        stopped = true;
      else
        open_round(false);
    }
    if (!stopped && scheduler_->continuous()) {
      const auto snapshot =
          std::make_shared<const StateDict>(server_.global_state());
      if (downlink_) {
        // Continuous policies leave with the freshest global, so every
        // redispatch is its own (per-client) broadcast.
        send_to(i, completed, snapshot);
      } else {
        dispatch(i, completed, snapshot, nullptr);
      }
    }
  };

  open_round(true);
  while (!stopped && queue.run_next()) {
  }

  result.final_accuracy =
      result.rounds.empty() ? 0.0 : result.rounds.back().accuracy;
  result.total_virtual_seconds = queue.now();
  result.total_wall_seconds = wall.seconds();
  return result;
  // ~ThreadPool drains any still-running client tasks (async policies stop
  // mid-flight once the configured number of aggregations completes).
}

}  // namespace fedsz::core

#include "core/fl/coordinator.hpp"

#include <mutex>

#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace fedsz::core {

FlCoordinator::FlCoordinator(const nn::ModelConfig& model_config,
                             data::DatasetPtr train, data::DatasetPtr test,
                             FlRunConfig config, UpdateCodecPtr codec)
    : model_config_(model_config),
      test_(std::move(test)),
      config_(std::move(config)),
      codec_(std::move(codec)),
      server_(model_config) {
  if (config_.clients == 0)
    throw InvalidArgument("FlCoordinator: need at least one client");
  if (!codec_) throw InvalidArgument("FlCoordinator: null update codec");
  Rng rng(config_.seed);
  const auto shards = data::partition_iid(train->size(), config_.clients, rng);
  for (std::size_t i = 0; i < config_.clients; ++i) {
    ClientConfig client_config = config_.client;
    client_config.seed = config_.seed ^ (0xC11E47ull * (i + 1));
    clients_.push_back(std::make_unique<FlClient>(
        static_cast<int>(i), model_config_,
        std::make_shared<data::SubsetDataset>(train, shards[i]),
        client_config));
  }
}

FlRunResult FlCoordinator::run() {
  Timer wall;
  FlRunResult result;
  const net::SimulatedNetwork network(config_.network);
  ThreadPool pool(std::max<std::size_t>(1, config_.threads));

  for (int round = 0; round < config_.rounds; ++round) {
    RoundRecord record;
    record.round = round;
    const StateDict& global = server_.global_state();

    struct PerClient {
      Bytes payload;
      std::size_t samples = 0;
      double train_seconds = 0.0;
      double compress_seconds = 0.0;
      double loss = 0.0;
      std::size_t raw_bytes = 0;
    };
    std::vector<PerClient> outputs(clients_.size());

    // Clients train and encode concurrently (one "process" per client).
    pool.parallel_for(clients_.size(), [&](std::size_t i) {
      ClientRoundResult client_result = clients_[i]->run_round(global);
      UpdateCodec::Encoded encoded = codec_->encode(client_result.update);
      PerClient& out = outputs[i];
      out.samples = client_result.samples;
      out.train_seconds = client_result.train_seconds;
      out.loss = client_result.mean_loss;
      out.compress_seconds = encoded.stats.compress_seconds;
      out.raw_bytes = encoded.stats.original_bytes;
      out.payload = std::move(encoded.payload);
    });

    // Server receives (simulated transfer) and decodes all client payloads
    // concurrently on the same pool, then accounts and aggregates serially.
    std::vector<std::pair<StateDict, std::size_t>> updates(outputs.size());
    std::vector<double> decode_seconds(outputs.size(), 0.0);
    pool.parallel_for(outputs.size(), [&](std::size_t i) {
      const PerClient& out = outputs[i];
      updates[i].first = codec_->decode(
          {out.payload.data(), out.payload.size()}, &decode_seconds[i]);
      updates[i].second = out.samples;
    });
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      const PerClient& out = outputs[i];
      record.train_seconds += out.train_seconds;
      record.compress_seconds += out.compress_seconds;
      record.mean_loss += out.loss;
      record.bytes_sent += out.payload.size();
      record.raw_bytes += out.raw_bytes;
      record.comm_seconds += network.transfer_seconds(out.payload.size());
      record.decompress_seconds += decode_seconds[i];
    }
    const double inv_clients = 1.0 / static_cast<double>(clients_.size());
    record.train_seconds *= inv_clients;
    record.compress_seconds *= inv_clients;
    record.decompress_seconds *= inv_clients;
    record.comm_seconds *= inv_clients;
    record.mean_loss *= inv_clients;

    server_.aggregate(updates);

    if (config_.evaluate_every_round || round + 1 == config_.rounds) {
      Timer eval_timer;
      record.accuracy = server_.evaluate(*test_, config_.eval_limit);
      record.eval_seconds = eval_timer.seconds();
    }
    result.rounds.push_back(record);
  }
  result.final_accuracy =
      result.rounds.empty() ? 0.0 : result.rounds.back().accuracy;
  result.total_wall_seconds = wall.seconds();
  return result;
}

}  // namespace fedsz::core

#include "core/fl/coordinator.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <future>
#include <memory>

#include "core/codec_spec.hpp"
#include "net/virtual_clock.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace fedsz::core {

void FlRunConfig::apply_comm_spec(const CodecSpec& spec) {
  downlink_spec = spec.downlink;
  downlink_mode =
      spec.downlink_delta ? DownlinkMode::kDelta : DownlinkMode::kFull;
  error_feedback = spec.error_feedback;
  topology.mode = spec.hier_fanout > 0 ? TopologyMode::kHier
                                       : TopologyMode::kFlat;
  topology.fanout = spec.hier_fanout;
  topology.backhaul_spec = spec.backhaul;
}

void FlRunConfig::validate() const {
  if (clients == 0)
    throw InvalidArgument("FlRunConfig: need at least one client");
  if (rounds <= 0) throw InvalidArgument("FlRunConfig: rounds must be >= 1");
  if (threads == 0) throw InvalidArgument("FlRunConfig: threads must be >= 1");
  if (!(compute_seconds_per_sample >= 0.0) ||
      !std::isfinite(compute_seconds_per_sample))
    throw InvalidArgument(
        "FlRunConfig: compute_seconds_per_sample must be finite and >= 0");
  if (!(compute_jitter >= 0.0) || compute_jitter >= 1.0)
    throw InvalidArgument("FlRunConfig: compute_jitter must be in [0, 1)");
  if (client.local_epochs <= 0)
    throw InvalidArgument("FlRunConfig: local_epochs must be >= 1");
  if (client.batch_size == 0)
    throw InvalidArgument("FlRunConfig: batch_size must be >= 1");
  if (!downlink_spec.empty()) {
    // Malformed specs throw InvalidArgument from the parser itself.
    if (parse_codec_spec(downlink_spec).has_comm_keys())
      throw InvalidArgument(
          "FlRunConfig: downlink_spec cannot itself carry comm keys");
  } else if (downlink_mode == DownlinkMode::kDelta) {
    // Catch the downmode=delta-without-downlink= mistake loudly instead of
    // silently running with a free lossless broadcast.
    throw InvalidArgument(
        "FlRunConfig: downlink_mode=kDelta requires a downlink_spec");
  }
  topology.validate();
}

namespace {

FlRunConfig validated(FlRunConfig config) {
  config.validate();
  return config;
}

net::HeterogeneousNetwork build_network(const FlRunConfig& config) {
  return net::build_links(config.heterogeneous, config.network,
                          config.clients);
}

}  // namespace

FlCoordinator::FlCoordinator(const nn::ModelConfig& model_config,
                             data::DatasetPtr train, data::DatasetPtr test,
                             FlRunConfig config, UpdateCodecPtr codec,
                             SchedulerPtr scheduler)
    : model_config_(model_config),
      test_(std::move(test)),
      config_(validated(std::move(config))),
      codec_(std::move(codec)),
      scheduler_(scheduler ? std::move(scheduler) : make_sync_scheduler()),
      server_(model_config),
      network_(build_network(config_)) {
  if (!codec_) throw InvalidArgument("FlCoordinator: null update codec");
  if (config_.topology.mode == TopologyMode::kHier) {
    // Continuous policies redispatch on fold; a partial that already left
    // for the root cannot absorb a late fold, so hierarchy requires a
    // barrier over each edge cohort.
    if (scheduler_->continuous())
      throw InvalidArgument(
          "FlCoordinator: hierarchical topology requires a barrier "
          "scheduler (sync or sampled_sync)");
    tree_ =
        std::make_unique<AggregationTree>(config_.topology, config_.clients);
  }
  if (!config_.downlink_spec.empty())
    downlink_ = std::make_unique<DownlinkChannel>(
        DownlinkConfig{config_.downlink_mode,
                       make_codec(parse_codec_spec(config_.downlink_spec))},
        config_.clients);
  feedback_.resize(config_.clients);
  Rng rng(config_.seed);
  const auto shards = data::partition_iid(train->size(), config_.clients, rng);
  Rng speed_rng(config_.seed ^ 0xC0DEC10Cull);
  compute_seconds_.reserve(config_.clients);
  for (std::size_t i = 0; i < config_.clients; ++i) {
    ClientConfig client_config = config_.client;
    client_config.seed = config_.seed ^ (0xC11E47ull * (i + 1));
    clients_.push_back(std::make_unique<FlClient>(
        static_cast<int>(i), model_config_,
        std::make_shared<data::SubsetDataset>(train, shards[i]),
        client_config));
    // Deterministic virtual training time: proportional to the shard, with
    // an optional per-client speed spread (heterogeneous devices).
    const double factor = speed_rng.uniform(1.0 - config_.compute_jitter,
                                            1.0 + config_.compute_jitter);
    compute_seconds_.push_back(
        config_.compute_seconds_per_sample *
        static_cast<double>(shards[i].size()) *
        static_cast<double>(config_.client.local_epochs) * factor);
  }
}

FlRunResult FlCoordinator::run() {
  Timer wall;
  FlRunResult result;
  result.scheduler = scheduler_->name();

  // What a dispatched client hands back once its real work (broadcast
  // decode + local SGD + update encoding on the pool) completes.
  struct WorkerOut {
    Bytes payload;
    std::size_t samples = 0;
    CompressionStats stats;  // the encode pass (bytes, plan census, timing)
    double train_seconds = 0.0;
    double mean_loss = 0.0;
    double downlink_decode_seconds = 0.0;  // per-client broadcast decode
    double ef_residual_norm = 0.0;         // after this update's encode
    double ef_decode_seconds = 0.0;  // decoding own payload for the residual
  };
  // One slot per client; a client has at most one update in flight.
  struct InFlight {
    std::future<WorkerOut> future;
    WorkerOut out;
    int dispatch_round = 0;
    double dispatch_seconds = 0.0;
    double transfer_seconds = 0.0;
    // Downlink leg (zeros when the broadcast is free/lossless).
    std::size_t downlink_bytes = 0;
    std::size_t downlink_raw_bytes = 0;
    double downlink_seconds = 0.0;
    double downlink_encode_seconds = 0.0;
    double downlink_decode_seconds = 0.0;  // kFull shared decode
  };

  net::EventQueue queue;
  std::vector<InFlight> flights(clients_.size());
  Rng cohort_rng(config_.seed ^ 0x5C4ED11Eull);
  int completed = 0;       // aggregations finished so far
  std::size_t folded = 0;  // root-side arrivals since the round opened
                           // (updates when flat, partials when hier)
  std::size_t goal = 0;    // arrivals that trigger the next aggregation
  bool stopped = false;
  RoundRecord record;
  // Per-aggregation-point decoded-payload accounting: node 0 = the root,
  // node 1 + e = edge e. Streaming keeps every live count at <= 1.
  const std::size_t edge_count = tree_ ? tree_->edge_count() : 0;
  std::vector<std::size_t> live(1 + edge_count, 0);
  std::vector<std::size_t> peak(1 + edge_count, 0);
  // Per-edge round state (hier only): the cohort size that closes the
  // edge's partial, and the root->edge downlink traffic charged so far.
  std::vector<std::size_t> edge_goal(edge_count, 0);
  std::vector<std::size_t> edge_downlink_bytes(edge_count, 0);
  std::vector<double> edge_downlink_seconds(edge_count, 0.0);

  using Snapshot = std::shared_ptr<const StateDict>;
  using PayloadPtr = std::shared_ptr<const Bytes>;

  // The client's real work, run on the pool: decode the broadcast payload
  // when one was delivered (per-client path), train on the resulting model,
  // fold in the error-feedback residual, encode, and — with EF on — absorb
  // what the encoder dropped (reconstruction read back from the payload)
  // into the residual carried to the next round. Per-client state
  // (feedback_[i], downlink session i) is safe without locks because a
  // client never has two tasks alive at once.
  // EF against a lossless uplink is provably a zero residual forever; skip
  // the per-round payload decode and residual passes outright.
  const bool ef_on = config_.error_feedback && !codec_->lossless();
  auto client_work = [this, ef_on](std::size_t i, int round, Snapshot model,
                                   PayloadPtr broadcast) -> WorkerOut {
    WorkerOut out;
    StateDict decoded_model;
    const StateDict* train_on = model.get();
    if (broadcast) {
      CompressionStats downlink_stats;
      const ByteSpan span{broadcast->data(), broadcast->size()};
      decoded_model = downlink_->mode() == DownlinkMode::kDelta
                          ? downlink_->receive(i, span, &downlink_stats)
                          : downlink_->decode_broadcast(span, &downlink_stats);
      out.downlink_decode_seconds = downlink_stats.decompress_seconds;
      train_on = &decoded_model;
    }
    ClientRoundResult round_result = clients_[i]->run_round(*train_on);
    EncodeContext ctx;
    ctx.round = round;
    ctx.client_id = static_cast<int>(i);
    ctx.steps = round_result.steps;
    StateDict update = std::move(round_result.update);
    if (ef_on) update = feedback_[i].apply(update);
    UpdateCodec::Encoded encoded = codec_->encode(update, ctx);
    if (ef_on) {
      // The server will decode exactly this; what it misses is carried over.
      CompressionStats ef_stats;
      const StateDict reconstruction = codec_->decode(
          {encoded.payload.data(), encoded.payload.size()}, &ef_stats);
      feedback_[i].absorb(update, reconstruction);
      out.ef_residual_norm = feedback_[i].residual_norm();
      out.ef_decode_seconds = ef_stats.decompress_seconds;
    }
    out.samples = round_result.samples;
    out.stats = encoded.stats;
    out.train_seconds = round_result.train_seconds;
    out.mean_loss = round_result.mean_loss;
    out.payload = std::move(encoded.payload);
    return out;
  };

  // Declared after client_work (and the flight/record state above) so the
  // pool destructor can still drain in-flight tasks that reference them.
  ThreadPool pool(std::max<std::size_t>(1, config_.threads));
  std::function<void(std::size_t, int, Snapshot, PayloadPtr)> dispatch;
  std::function<void(std::size_t, int, Snapshot)> send_to;
  std::function<void(const std::vector<std::size_t>&, int, Snapshot)>
      broadcast_to;
  std::function<void(std::size_t)> on_upload;
  std::function<void(std::size_t)> on_arrival;
  std::function<void(std::size_t, double, const EncodedPartial&)> on_partial;
  std::function<void()> close_round;
  std::function<void(bool)> open_round;

  // Start a client's real work on the pool and its virtual compute timer.
  // `model` is the state it trains on (the global snapshot, or the shared
  // kFull broadcast reconstruction); `broadcast` (per-client downlink path)
  // makes the worker decode its own payload first. The EncodeContext pins
  // the dispatch round and client id so round-/client-aware compression
  // policies resolve their per-update plans.
  dispatch = [&](std::size_t i, int round, Snapshot model,
                 PayloadPtr broadcast) {
    InFlight& flight = flights[i];
    flight.dispatch_round = round;
    flight.dispatch_seconds = queue.now();
    flight.future = pool.submit([&client_work, i, round, model, broadcast] {
      return client_work(i, round, std::move(model), std::move(broadcast));
    });
    queue.schedule_after(compute_seconds_[i], [&, i] { on_upload(i); });
  };

  // Per-client downlink: encode this client's broadcast on the pool (the
  // whole global, or its session delta in kDelta mode), then charge the
  // payload against the client's own link before its compute may start.
  // Used for kDelta cohorts and for continuous-scheduler redispatches,
  // where each client leaves with a different global. Under a hierarchical
  // topology the payload first crosses the owning edge's backhaul
  // (root->edge), then the client's own link (edge->client).
  send_to = [&](std::size_t i, int round, Snapshot snapshot) {
    const bool delta = downlink_->mode() == DownlinkMode::kDelta;
    auto pending = std::make_shared<std::future<BroadcastPayload>>(
        pool.submit([this, delta, i, round, snapshot] {
          return delta ? downlink_->encode_for_client(i, *snapshot, round)
                       : downlink_->encode_broadcast(*snapshot, round);
        }));
    queue.schedule_after(0.0, [&, i, round, pending] {
      BroadcastPayload broadcast = pending->get();
      InFlight& flight = flights[i];
      auto payload = std::make_shared<const Bytes>(
          std::move(broadcast.payload));
      flight.downlink_bytes = payload->size();
      flight.downlink_raw_bytes = broadcast.stats.original_bytes;
      flight.downlink_encode_seconds = broadcast.stats.compress_seconds;
      flight.downlink_decode_seconds = 0.0;
      flight.downlink_seconds =
          network_.link(i).transfer_seconds(payload->size());
      auto client_leg = [&, i, round, payload] {
        queue.schedule_after(flights[i].downlink_seconds,
                             [&, i, round, payload] {
                               dispatch(i, round, nullptr, payload);
                             });
      };
      if (!tree_) {
        client_leg();
        return;
      }
      const std::size_t e = tree_->edge_of(i);
      const double hop =
          tree_->backhaul_link(e).transfer_seconds(payload->size());
      edge_downlink_bytes[e] += payload->size();
      edge_downlink_seconds[e] += hop;
      record.backhaul_downlink_bytes += payload->size();
      record.backhaul_downlink_seconds += hop;
      queue.schedule_after(hop, client_leg);
    });
  };

  // kFull cohort broadcast: encode the global ONCE on the pool (overlapped
  // with the event pump), decode it once — every client reconstructs the
  // same model — and charge the same payload bytes against each client's
  // own link. The hot path never serializes per client.
  broadcast_to = [&](const std::vector<std::size_t>& cohort, int round,
                     Snapshot snapshot) {
    struct BroadcastReady {
      Bytes payload;
      CompressionStats stats;
      Snapshot model;  // the shared reconstruction clients train on
      double decode_seconds = 0.0;
    };
    auto pending = std::make_shared<std::future<BroadcastReady>>(
        pool.submit([this, round, snapshot]() -> BroadcastReady {
          BroadcastReady ready;
          BroadcastPayload broadcast =
              downlink_->encode_broadcast(*snapshot, round);
          CompressionStats decode_stats;
          ready.model = std::make_shared<const StateDict>(
              downlink_->decode_broadcast(
                  {broadcast.payload.data(), broadcast.payload.size()},
                  &decode_stats));
          ready.payload = std::move(broadcast.payload);
          ready.stats = broadcast.stats;
          ready.decode_seconds = decode_stats.decompress_seconds;
          return ready;
        }));
    queue.schedule_after(0.0, [&, cohort, round, pending] {
      auto ready = std::make_shared<const BroadcastReady>(pending->get());
      // The edge->client (or root->client, flat) leg: charge the payload
      // against the client's own link, then dispatch on the shared
      // reconstruction.
      auto deliver = [&, round, ready](std::size_t i) {
        InFlight& flight = flights[i];
        flight.downlink_bytes = ready->payload.size();
        flight.downlink_raw_bytes = ready->stats.original_bytes;
        flight.downlink_encode_seconds = ready->stats.compress_seconds;
        flight.downlink_decode_seconds = ready->decode_seconds;
        flight.downlink_seconds =
            network_.link(i).transfer_seconds(ready->payload.size());
        queue.schedule_after(flight.downlink_seconds,
                             [&, i, round, model = ready->model] {
                               dispatch(i, round, model, nullptr);
                             });
      };
      if (!tree_) {
        for (const std::size_t i : cohort) deliver(i);
        return;
      }
      // Hierarchical fan-out: ONE copy of the broadcast crosses each
      // participating edge's backhaul; that edge's clients start their own
      // downlink legs when it lands.
      std::vector<std::vector<std::size_t>> by_edge(tree_->edge_count());
      for (const std::size_t i : cohort)
        by_edge[tree_->edge_of(i)].push_back(i);
      for (std::size_t e = 0; e < by_edge.size(); ++e) {
        if (by_edge[e].empty()) continue;
        const double hop =
            tree_->backhaul_link(e).transfer_seconds(ready->payload.size());
        edge_downlink_bytes[e] += ready->payload.size();
        edge_downlink_seconds[e] += hop;
        record.backhaul_downlink_bytes += ready->payload.size();
        record.backhaul_downlink_seconds += hop;
        queue.schedule_after(hop, [deliver, group = std::move(by_edge[e])] {
          for (const std::size_t i : group) deliver(i);
        });
      }
    });
  };

  // Virtual compute done: collect the encoded update (waiting for the real
  // work if it is still running) and put it on this client's link.
  on_upload = [&](std::size_t i) {
    InFlight& flight = flights[i];
    flight.out = flight.future.get();
    flight.transfer_seconds =
        network_.link(i).transfer_seconds(flight.out.payload.size());
    queue.schedule_after(flight.transfer_seconds, [&, i] { on_arrival(i); });
  };

  // Close the current aggregation: finalize, normalize the per-round
  // means, evaluate, and either stop or open the next round. Shared by the
  // flat arrival path and the hierarchical partial-merge path.
  close_round = [&] {
    server_.finalize_round();
    const double inv = 1.0 / static_cast<double>(record.participants);
    record.train_seconds *= inv;
    record.compress_seconds *= inv;
    record.decompress_seconds *= inv;
    record.comm_seconds *= inv;
    record.mean_loss *= inv;
    record.downlink_seconds *= inv;
    record.downlink_encode_seconds *= inv;
    record.downlink_decode_seconds *= inv;
    record.mean_ef_residual_norm *= inv;
    record.ef_decode_seconds *= inv;
    if (!record.edges.empty()) {
      const double inv_edges =
          1.0 / static_cast<double>(record.edges.size());
      record.backhaul_seconds *= inv_edges;
      record.backhaul_encode_seconds *= inv_edges;
      record.backhaul_decode_seconds *= inv_edges;
      record.backhaul_downlink_seconds *= inv_edges;
    }
    record.virtual_seconds = queue.now();
    if (config_.evaluate_every_round || completed + 1 == config_.rounds) {
      Timer eval_timer;
      record.accuracy = server_.evaluate(*test_, config_.eval_limit);
      record.eval_seconds = eval_timer.seconds();
    }
    result.rounds.push_back(std::move(record));
    ++completed;
    if (completed >= config_.rounds)
      stopped = true;
    else
      open_round(false);
  };

  open_round = [&](bool initial) {
    record = RoundRecord{};
    record.round = completed;
    folded = 0;
    server_.begin_round();
    if (scheduler_->continuous() && !initial) {
      // Clients redispatch themselves on arrival; just reset the buffer.
      goal = scheduler_->aggregation_goal(clients_.size());
      return;
    }
    std::vector<std::size_t> cohort;
    if (tree_) {
      // Per-cohort sampling: the scheduler draws within each edge's member
      // set (cohort-relative indices), and the root's goal is one partial
      // per participating edge.
      goal = 0;
      for (std::size_t e = 0; e < edge_count; ++e) {
        const auto& members = tree_->edge(e).members();
        const std::vector<std::size_t> draw =
            scheduler_->cohort(completed, members.size(), cohort_rng);
        edge_goal[e] = scheduler_->aggregation_goal(draw.size());
        edge_downlink_bytes[e] = 0;
        edge_downlink_seconds[e] = 0.0;
        if (edge_goal[e] == 0) continue;
        tree_->edge(e).begin_round(server_.global_state());
        ++goal;
        for (const std::size_t idx : draw) cohort.push_back(members[idx]);
      }
    } else {
      cohort = scheduler_->cohort(completed, clients_.size(), cohort_rng);
      goal = scheduler_->aggregation_goal(cohort.size());
    }
    const auto snapshot =
        std::make_shared<const StateDict>(server_.global_state());
    if (!downlink_) {
      // Free lossless broadcast: clients start on the exact global at once.
      for (const std::size_t i : cohort) dispatch(i, completed, snapshot,
                                                  nullptr);
    } else if (downlink_->mode() == DownlinkMode::kFull) {
      broadcast_to(cohort, completed, snapshot);
    } else {
      for (const std::size_t i : cohort) send_to(i, completed, snapshot);
    }
  };

  // An update reached its aggregation point — the root (flat) or the
  // owning edge (hier): decode it (serially per node — at most one decoded
  // update is ever alive there), fold it into that node's streaming
  // accumulator, score the Eqn (1) decision against this client's own
  // link, and trigger the node's close-out once its goal is met.
  on_arrival = [&](std::size_t i) {
    InFlight& flight = flights[i];
    WorkerOut out = std::move(flight.out);
    flight.out = WorkerOut{};
    CompressionStats decode_stats;
    const std::size_t node = tree_ ? 1 + tree_->edge_of(i) : 0;
    StateDict update = codec_->decode({out.payload.data(), out.payload.size()},
                                      &decode_stats);
    ++live[node];
    peak[node] = std::max(peak[node], live[node]);
    const double weight =
        static_cast<double>(out.samples) *
        scheduler_->staleness_scale(flight.dispatch_round, completed);
    if (tree_)
      tree_->edge(node - 1).fold(update, weight);
    else
      server_.accumulate(update, weight);
    update = StateDict();  // folded; free it before anything else arrives
    --live[node];

    ClientTraceEntry trace;
    trace.client = i;
    trace.node = node;
    trace.dispatch_round = flight.dispatch_round;
    trace.dispatch_seconds = flight.dispatch_seconds;
    trace.arrival_seconds = queue.now();
    trace.transfer_seconds = flight.transfer_seconds;
    trace.weight = weight;
    trace.payload_bytes = out.payload.size();
    trace.raw_bytes = out.stats.original_bytes;
    trace.bound_value = out.stats.mean_bound_value;
    trace.lossy_tensors = out.stats.lossy_tensors;
    trace.lossless_tensors = out.stats.lossless_tensors;
    trace.raw_tensors = out.stats.raw_tensors;
    trace.downlink_bytes = flight.downlink_bytes;
    trace.downlink_seconds = flight.downlink_seconds;
    trace.ef_residual_norm = out.ef_residual_norm;
    trace.decision = net::evaluate_compression(
        out.stats.original_bytes, out.payload.size(),
        out.stats.compress_seconds, decode_stats.decompress_seconds,
        network_.link(i));
    record.train_seconds += out.train_seconds;
    record.compress_seconds += out.stats.compress_seconds;
    record.decompress_seconds += decode_stats.decompress_seconds;
    record.comm_seconds += flight.transfer_seconds;
    record.mean_loss += out.mean_loss;
    record.bytes_sent += out.payload.size();
    record.raw_bytes += out.stats.original_bytes;
    record.downlink_bytes += flight.downlink_bytes;
    record.downlink_raw_bytes += flight.downlink_raw_bytes;
    record.downlink_seconds += flight.downlink_seconds;
    record.downlink_encode_seconds += flight.downlink_encode_seconds;
    record.downlink_decode_seconds +=
        flight.downlink_decode_seconds + out.downlink_decode_seconds;
    record.mean_ef_residual_norm += out.ef_residual_norm;
    record.ef_decode_seconds += out.ef_decode_seconds;
    record.participants += 1;
    record.clients.push_back(std::move(trace));

    if (!tree_) {
      if (++folded >= goal) close_round();
    } else if (const std::size_t e = node - 1;
               tree_->edge(e).folded() >= edge_goal[e]) {
      // Edge cohort complete: finalize the weight-carrying partial,
      // re-encode it through the edge's backhaul codec, and put it on the
      // edge's own backhaul link (the edge-arrival event kind).
      auto partial = std::make_shared<const EncodedPartial>(
          tree_->edge(e).finalize_and_encode(completed));
      const double transfer =
          tree_->backhaul_link(e).transfer_seconds(partial->payload.size());
      queue.schedule_after(transfer, [&, e, transfer, partial] {
        on_partial(e, transfer, *partial);
      });
    }
    if (!stopped && scheduler_->continuous()) {
      const auto snapshot =
          std::make_shared<const StateDict>(server_.global_state());
      if (downlink_) {
        // Continuous policies leave with the freshest global, so every
        // redispatch is its own (per-client) broadcast.
        send_to(i, completed, snapshot);
      } else {
        dispatch(i, completed, snapshot, nullptr);
      }
    }
  };

  // An edge's re-encoded partial crossed its backhaul and reached the
  // root: decode it (the root, like every node, holds at most one decoded
  // payload at a time), merge the weight-carrying mean, and aggregate once
  // every participating edge has reported.
  on_partial = [&](std::size_t e, double transfer,
                   const EncodedPartial& partial) {
    CompressionStats decode_stats;
    ++live[0];
    peak[0] = std::max(peak[0], live[0]);
    StateDict mean = tree_->decode_partial(
        {partial.payload.data(), partial.payload.size()}, &decode_stats);
    server_.merge_partial(mean, partial.weight);
    mean = StateDict();  // merged; free it before anything else arrives
    --live[0];

    EdgeTraceEntry trace;
    trace.edge = e;
    trace.cohort = partial.clients;
    trace.weight = partial.weight;
    trace.payload_bytes = partial.payload.size();
    trace.raw_bytes = partial.stats.original_bytes;
    trace.encode_seconds = partial.stats.compress_seconds;
    trace.decode_seconds = decode_stats.decompress_seconds;
    trace.transfer_seconds = transfer;
    trace.arrival_seconds = queue.now();
    trace.downlink_bytes = edge_downlink_bytes[e];
    trace.downlink_seconds = edge_downlink_seconds[e];
    record.backhaul_bytes += trace.payload_bytes;
    record.backhaul_raw_bytes += trace.raw_bytes;
    record.backhaul_seconds += transfer;
    record.backhaul_encode_seconds += trace.encode_seconds;
    record.backhaul_decode_seconds += trace.decode_seconds;
    record.edges.push_back(trace);
    if (++folded >= goal) close_round();
  };

  open_round(true);
  while (!stopped && queue.run_next()) {
  }

  result.final_accuracy =
      result.rounds.empty() ? 0.0 : result.rounds.back().accuracy;
  result.peak_decoded_updates = peak[0];
  result.peak_decoded_per_node = std::move(peak);
  result.total_virtual_seconds = queue.now();
  result.total_wall_seconds = wall.seconds();
  return result;
  // ~ThreadPool drains any still-running client tasks (async policies stop
  // mid-flight once the configured number of aggregations completes).
}

}  // namespace fedsz::core

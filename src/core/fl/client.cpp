#include "core/fl/client.hpp"

#include "util/timer.hpp"

namespace fedsz::core {

FlClient::FlClient(int id, const nn::ModelConfig& model_config,
                   data::DatasetPtr shard, ClientConfig config)
    : id_(id),
      model_(nn::build_model(model_config).model),
      shard_(std::move(shard)),
      config_(config) {
  if (shard_->size() == 0)
    throw InvalidArgument("FlClient: empty data shard for client " +
                          std::to_string(id));
}

ClientRoundResult FlClient::run_round(const StateDict& global_state) {
  Timer timer;
  model_.load_state_dict(global_state);
  nn::Sgd optimizer(model_.parameters(), config_.sgd);
  data::DataLoader loader(shard_, config_.batch_size, /*shuffle=*/true,
                          config_.seed ^ (0x10adull * (id_ + 1)));
  double loss_sum = 0.0;
  std::size_t batches = 0;
  for (int epoch = 0; epoch < config_.local_epochs; ++epoch) {
    loader.reset();
    data::Batch batch;
    while (loader.next(batch)) {
      model_.zero_grad();
      const Tensor logits = model_.forward(batch.images, /*training=*/true);
      const nn::LossResult loss = nn::softmax_cross_entropy(
          logits, {batch.labels.data(), batch.labels.size()});
      model_.backward(loss.grad_logits);
      optimizer.step();
      loss_sum += loss.loss;
      ++batches;
    }
  }
  ClientRoundResult result;
  result.update = model_.state_dict();
  result.samples = shard_->size();
  result.steps = batches;
  result.train_seconds = timer.seconds();
  result.mean_loss = batches > 0 ? loss_sum / static_cast<double>(batches)
                                 : 0.0;
  return result;
}

}  // namespace fedsz::core

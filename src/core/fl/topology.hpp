// Hierarchical federation topology: multi-tier sharded aggregation over
// the virtual clock. A flat star tops out where one aggregation point
// saturates; the roadmap's millions-of-users scaling needs aggregation to
// fan IN through tiers. `TopologyConfig::tiers` describes the fan-in per
// level bottom-up — tiers = {32, 16} shards clients into cohorts of 32
// under tier-1 edges, groups those edges 16 apiece under tier-2 nodes, and
// the root merges whatever the top tier ships. Every interior node
// stream-folds its children's decoded payloads through the same Aggregator
// begin_round/accumulate path as the root (so peak decoded-update memory
// per NODE stays O(1)), finalizes a weight-carrying partial mean
// (PartialAggregate), re-encodes it through its TIER's backhaul codec, and
// ships it over its own link on the virtual clock. Parents merge partials
// (merge_partial) instead of raw updates, so each link tier carries
// O(nodes-below-it / fan-in) traffic — the paper's Eqn (1) cost model
// telescoping per aggregation tier, with error-bounded lossy compression
// paying once per lossy backhaul.
//
// Regression contract: kHier with identity backhauls and tiers == {clients}
// (one edge folding everyone) reproduces the flat SyncScheduler
// accuracy/byte trajectory exactly — a single partial merged into a fresh
// accumulator is bit-exact, and identity re-encoding round-trips the
// partial untouched. The same argument telescopes: any chain topology
// ({clients, 1, 1, ...}) is bit-exact against flat.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/error_feedback.hpp"
#include "core/fl/aggregator.hpp"
#include "core/update_codec.hpp"
#include "net/heterogeneous.hpp"

namespace fedsz::core {

enum class TopologyMode : std::uint8_t { kFlat = 0, kHier = 1 };

std::string topology_mode_name(TopologyMode mode);

/// How an interior node decides when to ship its partial upstream.
enum class EdgeMode : std::uint8_t {
  kSync = 0,      // barrier: wait for every expected child
  kBuffered = 1,  // FedBuff-style: ship after K folds, late children miss
};

std::string edge_mode_name(EdgeMode mode);

/// How clients map onto tier-1 edges.
enum class ShardStrategy : std::uint8_t {
  kContiguous = 0,  // index order: [0, N) under edge 0, the next N under 1
  kShuffled = 1,    // seeded permutation first, then contiguous split —
                    // breaks device-class-correlated cohorts
};

std::string shard_strategy_name(ShardStrategy strategy);

struct TopologyConfig {
  TopologyMode mode = TopologyMode::kFlat;
  /// Fan-in per level, bottom-up (kHier, every entry >= 1): tiers[0]
  /// clients per tier-1 edge, tiers[1] tier-1 edges per tier-2 node, ...
  /// The top tier's nodes ship straight to the root. Spec grammar:
  /// topology=hier:<N>[x<M>...].
  std::vector<std::size_t> tiers;
  /// DEPRECATED single-level sugar: fanout == N behaves exactly like
  /// tiers == {N}. Kept so pre-tiers call sites and spec strings stay
  /// source-compatible; setting both fanout and tiers is an error.
  std::size_t fanout = 0;
  /// Default codec spec for every tier's partial re-encode (the
  /// parse_codec_spec grammar). Empty = "identity": partials ship
  /// uncompressed but are still charged on their links.
  std::string backhaul_spec;
  /// Per-tier overrides of `backhaul_spec`: entry k-1 (if non-empty) is
  /// the codec for tier k's uplink (spec key backhaul<k>=SPEC). Shorter
  /// than tiers is fine; missing/empty entries fall back to the default.
  std::vector<std::string> tier_backhaul_specs;
  /// Backhaul link shared by every interior node when
  /// `backhaul_heterogeneous` is unset. Edges aggregate near their
  /// clients, so the default models a metro uplink an order of magnitude
  /// faster than the paper's 10 Mbps edge link.
  net::NetworkProfile backhaul_network{100.0, 0.0};
  /// When set, draws one backhaul link per node instead of sharing
  /// `backhaul_network` (two_tier puts a fraction of edges on datacenter
  /// fiber and the rest on constrained metro links). Tiers above the
  /// first re-seed the draw per level so links differ across tiers.
  std::optional<net::HeterogeneousNetworkConfig> backhaul_heterogeneous;
  /// Ship discipline for interior nodes (spec key
  /// edgemode=sync|buffered:<K>). kBuffered requires edge_buffer >= 1.
  EdgeMode edge_mode = EdgeMode::kSync;
  /// FedBuff-style buffer size K: a buffered node ships after
  /// min(K, expected-children) folds. Only meaningful under kBuffered.
  std::size_t edge_buffer = 0;
  /// Edge-side error feedback (spec key edgeef=on): every interior node
  /// with a LOSSY tier codec carries the residual its re-encode dropped
  /// into its next round's partial, mirroring the client EF path.
  bool edge_error_feedback = false;
  /// Client -> tier-1 edge assignment (spec key
  /// shard=contiguous|shuffled).
  ShardStrategy sharding = ShardStrategy::kContiguous;
  /// Seed for kShuffled sharding; 0 lets the coordinator derive one from
  /// the run seed (standalone trees fall back to a fixed constant).
  std::uint64_t shard_seed = 0;

  /// The tier vector after resolving the deprecated `fanout` sugar:
  /// tiers when set, {fanout} when only fanout is, empty otherwise.
  std::vector<std::size_t> resolved_tiers() const;

  /// Throws InvalidArgument on degenerate specs, naming the valid options:
  /// kHier without tiers (or with a zero tier, or with both fanout and
  /// tiers set), kFlat carrying any hier-only option (a loud error beats
  /// silently ignoring them), more tier backhaul overrides than tiers,
  /// malformed/comm-carrying backhaul specs, or a buffered edge mode
  /// without a buffer size (and vice versa).
  void validate() const;
};

/// Contiguous index shards: clients [0, fanout) under edge 0, the next
/// fanout under edge 1, ... Every shard is non-empty and at most `fanout`
/// long. Throws InvalidArgument when clients or fanout is 0.
std::vector<std::vector<std::size_t>> shard_clients(std::size_t clients,
                                                    std::size_t fanout);

/// Sharding with a strategy: kContiguous matches the overload above;
/// kShuffled applies a seeded Fisher-Yates permutation to the client
/// indices first (deterministic per seed), then splits contiguously — so
/// shard SIZES match the contiguous split but membership is decorrelated
/// from index order (device class, arrival order, ...).
std::vector<std::vector<std::size_t>> shard_clients(std::size_t clients,
                                                    std::size_t fanout,
                                                    ShardStrategy strategy,
                                                    std::uint64_t seed);

/// One finalized, re-encoded partial: the payload that crosses a backhaul
/// link plus its encode stats and the aggregation weight it carries (the
/// scalar weight rides the container header at negligible cost, so the
/// simulation charges only the payload bytes).
struct EncodedPartial {
  Bytes payload;
  CompressionStats stats;
  double weight = 0.0;
  std::size_t clients = 0;  // leaf updates folded into the partial
  /// L2 norm of the node's carried EF residual after this encode (0 with
  /// edge EF off or a lossless tier codec).
  double ef_residual_norm = 0.0;
};

/// One interior aggregation point: a streaming accumulator round-keyed
/// exactly like the root's, re-encoding through its tier's codec, with an
/// optional edge-side error-feedback accumulator for lossy tiers.
class EdgeAggregator {
 public:
  /// `id` is the node's tree-wide flat interior index, `tier` its 1-based
  /// level, `members` its static children (client indices at tier 1, child
  /// node level-indices above).
  EdgeAggregator(std::size_t id, std::size_t tier,
                 std::vector<std::size_t> members, UpdateCodecPtr codec,
                 bool error_feedback = false);

  std::size_t id() const { return id_; }
  std::size_t tier() const { return tier_; }
  const std::vector<std::size_t>& members() const { return members_; }

  /// Open a round; the accumulator mirrors `reference`'s structure.
  void begin_round(const StateDict& reference);
  bool round_open() const { return aggregator_->round_open(); }
  /// Fold one decoded child payload (the same streaming path as the root).
  /// `leaves` is the number of LEAF updates the payload carries — 1 for a
  /// client update, the child partial's own leaf count above tier 1 — so
  /// EncodedPartial::clients telescopes through the tree.
  void fold(const StateDict& update, double weight, std::size_t leaves = 1);
  std::size_t folded() const { return aggregator_->accumulated(); }
  /// Abandon the open round (a node whose whole cohort churned away).
  void abort_round();
  /// Close the round: finalize the partial mean and re-encode it through
  /// this node's tier codec. With edge EF on and a lossy codec, the
  /// carried residual is folded in before the encode and what the encoder
  /// dropped is absorbed back. `round` pins the EncodeContext so
  /// round-aware policies resolve; the context's client_id is the node's
  /// ones-complement (-1 - id), keeping interior encodes distinct from any
  /// client id.
  EncodedPartial finalize_and_encode(int round);

  /// The node's carried EF accumulator (checkpoint save/restore; inert
  /// unless edge EF rides a lossy tier codec).
  const ErrorFeedbackAccumulator& feedback() const { return feedback_; }
  ErrorFeedbackAccumulator& feedback() { return feedback_; }

 private:
  std::size_t id_;
  std::size_t tier_;
  std::vector<std::size_t> members_;
  UpdateCodecPtr codec_;
  AggregatorPtr aggregator_;  // streaming mean; the strategy rule never runs
  std::size_t leaves_ = 0;    // leaf updates folded this round
  bool ef_on_ = false;
  ErrorFeedbackAccumulator feedback_;
};

/// The interior of a multi-tier aggregation tree: one level of
/// EdgeAggregators per tier, the static client->edge ownership map, one
/// uplink per node, and one codec per tier.
class AggregationTree {
 public:
  /// Builds the interior for a kHier config (throws InvalidArgument
  /// otherwise, or when the config fails validate()). Level sizes follow
  /// ceil division: level 0 has ceil(clients / tiers[0]) nodes, level l
  /// has ceil(level_size(l-1) / tiers[l]).
  AggregationTree(const TopologyConfig& config, std::size_t clients);

  /// Number of interior levels (tiers.size()).
  std::size_t levels() const { return levels_.size(); }
  std::size_t level_size(std::size_t level) const;
  /// Total interior nodes across every level.
  std::size_t interior_nodes() const { return total_nodes_; }
  /// Tree-wide flat index of node `i` at `level` (level-0 nodes first,
  /// then level 1, ...) — the indexing behind per-node accounting and the
  /// 1 + flat trace node ids.
  std::size_t flat_index(std::size_t level, std::size_t i) const;
  EdgeAggregator& node(std::size_t level, std::size_t i);
  const EdgeAggregator& node(std::size_t level, std::size_t i) const;
  /// Level-index of the parent of node `i` at `level` (requires
  /// level + 1 < levels(); top-level nodes ship straight to the root).
  std::size_t parent_of(std::size_t level, std::size_t i) const;
  /// This node's uplink (to its parent, or to the root for the top level).
  const net::SimulatedNetwork& uplink(std::size_t level, std::size_t i) const;
  /// The codec tier `level` re-encodes partials through (and its parent
  /// decodes with).
  const UpdateCodec& tier_codec(std::size_t level) const;
  /// Parent-side decode of a partial shipped from `level`.
  StateDict decode_partial(std::size_t level, ByteSpan payload,
                           CompressionStats* stats = nullptr) const;
  /// The static client shards under the tier-1 edges (what each round's
  /// cohorts are drawn from; churn re-sharding overrides per round).
  const std::vector<std::vector<std::size_t>>& base_shards() const {
    return base_shards_;
  }

  // ---- single-level conveniences (tier 1), kept from the one-level API --
  std::size_t edge_count() const { return level_size(0); }
  EdgeAggregator& edge(std::size_t index) { return node(0, index); }
  const EdgeAggregator& edge(std::size_t index) const { return node(0, index); }
  /// The tier-1 edge that statically owns `client`.
  std::size_t edge_of(std::size_t client) const;
  const net::SimulatedNetwork& backhaul_link(std::size_t edge) const {
    return uplink(0, edge);
  }
  /// Root-side decode of a TOP-level partial (flat trees: the only level).
  StateDict decode_partial(ByteSpan payload,
                           CompressionStats* stats = nullptr) const;

 private:
  struct Level {
    UpdateCodecPtr codec;
    net::HeterogeneousNetwork links;  // one uplink per node at this level
    std::vector<EdgeAggregator> nodes;
    std::size_t flat_offset = 0;  // tree-wide index of this level's node 0
    std::size_t fan = 1;          // this tier's configured fan-in
  };
  std::vector<Level> levels_;
  std::vector<std::vector<std::size_t>> base_shards_;
  std::vector<std::size_t> owner_;  // client index -> tier-1 edge index
  std::size_t total_nodes_ = 0;
};

}  // namespace fedsz::core

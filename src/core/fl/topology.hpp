// Hierarchical federation topology: sharded edge aggregation over the
// virtual clock. A flat star tops out where one aggregation point
// saturates; the roadmap's millions-of-users scaling needs aggregation to
// fan IN through tiers. Clients are sharded into contiguous cohorts under
// edge aggregators: each edge stream-folds its cohort's decoded updates
// through the same Aggregator begin_round/accumulate path as the root (so
// peak decoded-update memory per NODE stays O(1)), finalizes a
// weight-carrying partial mean (PartialAggregate), re-encodes it through
// the policy/v3 container with its own codec spec, and ships it over its
// own backhaul link on the virtual clock. The root merges partials
// (merge_partial) instead of raw updates, so root-link traffic is
// O(edges), not O(clients) — the paper's Eqn (1) cost model applied tier
// by tier, with error-bounded lossy compression paying a second time on
// the backhaul.
//
// Regression contract: kHier with an identity backhaul and fanout ==
// clients (one edge folding everyone) reproduces the flat SyncScheduler
// accuracy/byte trajectory exactly — a single partial merged into a fresh
// accumulator is bit-exact, and identity re-encoding round-trips the
// partial untouched.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/fl/aggregator.hpp"
#include "core/update_codec.hpp"
#include "net/heterogeneous.hpp"

namespace fedsz::core {

enum class TopologyMode : std::uint8_t { kFlat = 0, kHier = 1 };

std::string topology_mode_name(TopologyMode mode);

struct TopologyConfig {
  TopologyMode mode = TopologyMode::kFlat;
  /// Clients per edge aggregator (kHier, >= 1). Edges are contiguous
  /// index shards: ceil(clients / fanout) edges, the last possibly short.
  std::size_t fanout = 0;
  /// Codec spec for the edge->root partial re-encode (the
  /// parse_codec_spec grammar). Empty = "identity": partials ship
  /// uncompressed but are still charged on the backhaul.
  std::string backhaul_spec;
  /// Backhaul link shared by every edge when `backhaul_heterogeneous` is
  /// unset. Edges aggregate near their clients, so the default models a
  /// metro uplink an order of magnitude faster than the paper's 10 Mbps
  /// edge link.
  net::NetworkProfile backhaul_network{100.0, 0.0};
  /// When set, draws one backhaul link per edge instead of sharing
  /// `backhaul_network` (two_tier puts a fraction of edges on datacenter
  /// fiber and the rest on constrained metro links).
  std::optional<net::HeterogeneousNetworkConfig> backhaul_heterogeneous;

  /// Throws InvalidArgument on degenerate specs: kHier with fanout 0,
  /// kFlat carrying hier-only options (fanout/backhaul — a loud error
  /// beats silently ignoring them), or a malformed/comm-carrying backhaul
  /// spec.
  void validate() const;
};

/// Contiguous index shards: clients [0, fanout) under edge 0, the next
/// fanout under edge 1, ... Every shard is non-empty and at most `fanout`
/// long. Throws InvalidArgument when clients or fanout is 0.
std::vector<std::vector<std::size_t>> shard_clients(std::size_t clients,
                                                    std::size_t fanout);

/// One finalized, re-encoded partial: the payload that crosses the
/// backhaul plus its encode stats and the aggregation weight it carries
/// (the scalar weight rides the container header at negligible cost, so
/// the simulation charges only the payload bytes).
struct EncodedPartial {
  Bytes payload;
  CompressionStats stats;
  double weight = 0.0;
  std::size_t clients = 0;  // updates folded into the partial
};

/// One edge aggregation point: a fixed member set and a streaming
/// accumulator round-keyed exactly like the root's.
class EdgeAggregator {
 public:
  EdgeAggregator(std::size_t id, std::vector<std::size_t> members,
                 UpdateCodecPtr codec);

  std::size_t id() const { return id_; }
  const std::vector<std::size_t>& members() const { return members_; }

  /// Open a round; the accumulator mirrors `reference`'s structure.
  void begin_round(const StateDict& reference);
  bool round_open() const { return aggregator_->round_open(); }
  /// Fold one decoded client update (the same streaming path as the root).
  void fold(const StateDict& update, double weight);
  std::size_t folded() const { return aggregator_->accumulated(); }
  /// Close the round: finalize the partial mean and re-encode it through
  /// this edge's backhaul codec. `round` pins the EncodeContext so
  /// round-aware policies resolve; the context's client_id is the edge's
  /// ones-complement (-1 - id), keeping edge encodes distinct from any
  /// client id.
  EncodedPartial finalize_and_encode(int round);

 private:
  std::size_t id_;
  std::vector<std::size_t> members_;
  UpdateCodecPtr codec_;
  AggregatorPtr aggregator_;  // streaming mean; the strategy rule never runs
};

/// The edge tier of a two-level aggregation tree: edge aggregators, the
/// client->edge ownership map, and one backhaul link per edge.
class AggregationTree {
 public:
  /// Builds ceil(clients / fanout) edges for a kHier config (throws
  /// InvalidArgument otherwise, or when the config fails validate()).
  AggregationTree(const TopologyConfig& config, std::size_t clients);

  std::size_t edge_count() const { return edges_.size(); }
  EdgeAggregator& edge(std::size_t index);
  const EdgeAggregator& edge(std::size_t index) const;
  /// The edge that aggregates `client`.
  std::size_t edge_of(std::size_t client) const;
  const net::SimulatedNetwork& backhaul_link(std::size_t edge) const;
  /// Root-side decode of a partial payload (the edges' shared codec).
  StateDict decode_partial(ByteSpan payload,
                           CompressionStats* stats = nullptr) const;

 private:
  net::HeterogeneousNetwork backhaul_;  // one link per edge
  UpdateCodecPtr codec_;
  std::vector<EdgeAggregator> edges_;
  std::vector<std::size_t> owner_;  // client index -> edge index
};

}  // namespace fedsz::core

// FL server: holds the global model, performs FedAvg aggregation
// (sample-count weighted mean over client state dicts, McMahan et al. 2017)
// and evaluates global accuracy on held-out data.
#pragma once

#include "core/fl/aggregator.hpp"
#include "data/dataset.hpp"
#include "nn/models.hpp"

namespace fedsz::core {

class FlServer {
 public:
  explicit FlServer(const nn::ModelConfig& model_config);

  const StateDict& global_state() const { return global_state_; }

  /// Replace the aggregation rule (default: FedAvg, the paper's setting).
  void set_aggregator(AggregatorPtr aggregator);

  /// Fold a round of updates into the global state via the configured
  /// aggregation rule. Updates must share the global state's structure.
  void aggregate(const std::vector<std::pair<StateDict, std::size_t>>& updates);

  /// Top-1 accuracy of the global model on (up to `limit` samples of) a
  /// dataset; limit 0 = all.
  double evaluate(const data::Dataset& test_set, std::size_t limit = 0,
                  std::size_t batch_size = 64);

 private:
  nn::Model model_;
  StateDict global_state_;
  AggregatorPtr aggregator_;
};

}  // namespace fedsz::core

// FL server: holds the global model, performs aggregation through a
// pluggable Aggregator (default: FedAvg, McMahan et al. 2017) and evaluates
// global accuracy on held-out data. The event-driven coordinator uses the
// streaming begin_round / accumulate / finalize_round path so each decoded
// update is folded on arrival and freed immediately; the batch aggregate()
// remains for synchronous callers.
#pragma once

#include "core/fl/aggregator.hpp"
#include "data/dataset.hpp"
#include "nn/models.hpp"

namespace fedsz::core {

class FlServer {
 public:
  explicit FlServer(const nn::ModelConfig& model_config);

  const StateDict& global_state() const { return global_state_; }

  /// Replace the aggregation rule (default: FedAvg, the paper's setting).
  void set_aggregator(AggregatorPtr aggregator);

  /// The active aggregation rule (checkpoint save/load goes through it).
  Aggregator& aggregator() { return *aggregator_; }
  const Aggregator& aggregator() const { return *aggregator_; }

  /// Overwrite the global model from a checkpoint. The restored state must
  /// match the configured model's structure (load_state_dict validates);
  /// only legal between rounds.
  void restore_global_state(StateDict state);

  // ---- streaming round (updates folded as they arrive) ----
  void begin_round();
  /// Fold one decoded update with aggregation weight `weight` (sample
  /// count, optionally staleness-scaled). The update is not retained.
  void accumulate(const StateDict& update, double weight);
  /// Hierarchical root path: fold one edge's decoded partial mean carrying
  /// total aggregation weight `weight` (Aggregator::merge_partial).
  void merge_partial(const StateDict& mean, double weight);
  /// Apply the accumulated mean to the global model and close the round.
  void finalize_round();
  /// Abandon the open round, leaving the global model untouched — how the
  /// coordinator closes a round that lost every participant to churn.
  void abort_round() { aggregator_->abort_round(); }
  bool round_open() const { return aggregator_->round_open(); }

  /// Fold a round of updates into the global state via the configured
  /// aggregation rule. Updates must share the global state's structure.
  void aggregate(const std::vector<std::pair<StateDict, std::size_t>>& updates);

  /// Top-1 accuracy of the global model on (up to `limit` samples of) a
  /// dataset; limit 0 = all.
  double evaluate(const data::Dataset& test_set, std::size_t limit = 0,
                  std::size_t batch_size = 64);

 private:
  nn::Model model_;
  StateDict global_state_;
  AggregatorPtr aggregator_;
};

}  // namespace fedsz::core

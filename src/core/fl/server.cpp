#include "core/fl/server.hpp"

#include <cstring>

#include "data/dataloader.hpp"
#include "nn/metrics.hpp"

namespace fedsz::core {

FlServer::FlServer(const nn::ModelConfig& model_config)
    : model_(nn::build_model(model_config).model),
      global_state_(model_.state_dict()),
      aggregator_(make_fedavg()) {}

void FlServer::set_aggregator(AggregatorPtr aggregator) {
  if (!aggregator) throw InvalidArgument("FlServer: null aggregator");
  aggregator_ = std::move(aggregator);
}

void FlServer::restore_global_state(StateDict state) {
  if (aggregator_->round_open())
    throw InvalidArgument("FlServer: restore_global_state mid-round");
  model_.load_state_dict(state);  // validates structure before we commit
  global_state_ = std::move(state);
}

void FlServer::begin_round() { aggregator_->begin_round(global_state_); }

void FlServer::accumulate(const StateDict& update, double weight) {
  aggregator_->accumulate(update, weight);
}

void FlServer::merge_partial(const StateDict& mean, double weight) {
  aggregator_->merge_partial(mean, weight);
}

void FlServer::finalize_round() {
  aggregator_->finalize(global_state_);
  model_.load_state_dict(global_state_);
}

void FlServer::aggregate(
    const std::vector<std::pair<StateDict, std::size_t>>& updates) {
  aggregator_->aggregate(global_state_, updates);
  model_.load_state_dict(global_state_);
}

double FlServer::evaluate(const data::Dataset& test_set, std::size_t limit,
                          std::size_t batch_size) {
  const std::size_t count =
      limit == 0 ? test_set.size() : std::min(limit, test_set.size());
  if (count == 0) return 0.0;
  model_.load_state_dict(global_state_);
  std::size_t done = 0;
  double correct_weighted = 0.0;
  while (done < count) {
    const std::size_t take = std::min(batch_size, count - done);
    const Shape img = test_set.image_shape();
    Tensor images({static_cast<std::int64_t>(take), img[0], img[1], img[2]});
    std::vector<int> labels(take);
    const std::size_t sample_numel = shape_numel(img);
    for (std::size_t i = 0; i < take; ++i) {
      const data::Sample sample = test_set.get(done + i);
      std::memcpy(images.data() + i * sample_numel, sample.image.data(),
                  sample_numel * sizeof(float));
      labels[i] = sample.label;
    }
    const Tensor logits = model_.forward(images, /*training=*/false);
    correct_weighted +=
        nn::top1_accuracy(logits, {labels.data(), labels.size()}) *
        static_cast<double>(take);
    done += take;
  }
  return correct_weighted / static_cast<double>(count);
}

}  // namespace fedsz::core

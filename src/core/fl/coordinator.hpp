// FL coordinator: the event-driven federation runtime. Partitions a
// training set across clients and pumps a virtual-clock event queue instead
// of iterating rounds: dispatching a client submits its real work (local
// SGD + update encoding) to a thread pool, while deterministic *virtual*
// durations — a compute model plus the client's own simulated link — decide
// when the update "arrives" at the server. Arrivals are decoded one at a
// time and folded straight into the streaming aggregator, so peak
// decoded-update memory is O(1) in the client count, and each arrival is
// scored against Eqn (1) on that client's link (the per-client
// CompressionDecision trace behind Figures 7-9).
//
// Participation is a Scheduler policy: the default SyncScheduler reproduces
// the classic full-participation FedAvg barrier (and, over a homogeneous
// network, the exact pre-event-runtime trajectory); SampledSyncScheduler
// and BufferedAsyncScheduler open the client-sampling and FedBuff-style
// asynchronous regimes. Event order depends only on seeds and virtual
// durations — never on host load — so every run is reproducible.
//
// Topology is orthogonal (core/fl/topology.hpp): under TopologyMode::kHier
// client arrivals fold at their EDGE aggregator instead of the root; once
// an edge's cohort goal is met it finalizes a weight-carrying partial mean,
// re-encodes it through its backhaul codec spec, and a new edge-arrival
// event delivers it over the edge's own backhaul link; the root merges
// partials and aggregates when every edge reported. Downlink broadcasts
// fan out the other way (root->edge->client), charged per hop.
#pragma once

#include <optional>

#include "core/error_feedback.hpp"
#include "core/fl/client.hpp"
#include "core/fl/downlink.hpp"
#include "core/fl/population.hpp"
#include "core/fl/scheduler.hpp"
#include "core/fl/server.hpp"
#include "core/fl/topology.hpp"
#include "core/update_codec.hpp"
#include "data/partition.hpp"
#include "net/heterogeneous.hpp"

namespace fedsz::core {

struct CodecSpec;

/// Seeded churn injection, applied as coordinator pump events. Every draw
/// comes from its own RNG stream (seeded here, or derived from the run
/// seed), so a failure-free run consumes exactly the randomness it did
/// before this struct existed — the PR-5 trajectory pins stay byte-exact.
struct FailureSchedule {
  /// Per-dispatch probability a client fails mid-round: it trains for half
  /// its compute budget, then vanishes without uploading. Its weight never
  /// reaches the aggregate; the trace records the dropout.
  double dropout_rate = 0.0;
  /// Per-round probability a tier-1 edge crashes before the round opens.
  /// Its cohort is re-sharded (seeded shuffle, round-robin) across the
  /// surviving sibling edges; at least one edge always survives.
  double edge_failure_rate = 0.0;
  /// Virtual-time budget per round: clients still in flight this many
  /// seconds after the round opened are evicted (traced with an eviction
  /// marker) and open interior nodes force-ship what they have. 0 = no
  /// deadline.
  double straggler_deadline_seconds = 0.0;
  /// RNG stream for the draws above; 0 derives one from the run seed.
  std::uint64_t seed = 0;

  bool empty() const {
    return dropout_rate == 0.0 && edge_failure_rate == 0.0 &&
           straggler_deadline_seconds == 0.0;
  }
  /// Throws InvalidArgument on rates outside [0, 1] or a negative/non-
  /// finite deadline.
  void validate() const;
};

struct FlRunConfig {
  std::size_t clients = 4;
  int rounds = 10;
  ClientConfig client;
  net::NetworkProfile network{10.0, 0.0};  // the paper's 10 Mbps edge link
  /// When set, draws one link per client instead of sharing `network`.
  std::optional<net::HeterogeneousNetworkConfig> heterogeneous;
  std::size_t eval_limit = 512;            // test samples per evaluation
  std::size_t threads = 4;
  std::uint64_t seed = 42;
  bool evaluate_every_round = true;
  /// Virtual-clock compute model: simulated client training time is
  /// seconds_per_sample * samples * local_epochs * a per-client speed
  /// factor drawn from [1 - jitter, 1 + jitter]. Deterministic by seed, so
  /// event order never depends on host load.
  double compute_seconds_per_sample = 1e-3;
  double compute_jitter = 0.0;  // in [0, 1)

  /// Codec spec for the server->client global-model broadcast (e.g.
  /// "fedsz:eb=rel:1e-3" or "identity"). Empty keeps the pre-downlink
  /// model: the broadcast is lossless and costs nothing on the virtual
  /// clock. When set, broadcast bytes are charged against each client's
  /// own link BEFORE its local training starts, and clients train on the
  /// decoded (possibly lossy) model.
  std::string downlink_spec;
  /// kFull encodes the whole global once per round; kDelta encodes each
  /// client's delta against the model it last acknowledged.
  DownlinkMode downlink_mode = DownlinkMode::kFull;
  /// Per-client uplink error feedback: the residual the lossy encoder
  /// dropped is folded into the next round's update before encoding.
  bool error_feedback = false;

  /// Aggregation topology: the default flat star, or a hierarchical tree
  /// (TopologyMode::kHier) sharding clients under edge aggregators that
  /// re-encode weight-carrying partial means over their own backhaul
  /// links. Hierarchical runs require a barrier scheduler (sync /
  /// sampled_sync), applied per edge cohort.
  TopologyConfig topology;

  /// Seeded churn: client dropout, edge crashes with re-sharding, and
  /// straggler eviction. Empty (the default) injects nothing. Requires a
  /// barrier scheduler; edge_failure_rate further requires kHier.
  FailureSchedule failures;

  /// Wire transport for hierarchical edges (transport= comm key), in the
  /// spec's canonical spelling: empty = in-process simulation; "tcp:<port>"
  /// = each edge cohort is its own process over TCP (port 0 picks a free
  /// one). Consumed by the federation driver (core/fl/federation.hpp), not
  /// by FlCoordinator::run() itself.
  std::string transport;

  /// Checkpoint/resume (checkpoint=<path>:<K> comm key): with a non-empty
  /// path the coordinator atomically rewrites `checkpoint_path` every
  /// `checkpoint_every` completed rounds, and — when `resume` is set — first
  /// restores the state found there, so the finished run is bit-identical
  /// to one that never stopped.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 0;
  bool resume = false;

  /// Client data sharding (data= comm key): 0 = IID deal (the default and
  /// the byte-stable pre-existing trajectory), > 0 = Dirichlet label-skew
  /// partition with this concentration alpha (lower = more skew), seeded
  /// from `seed` so the shards are deterministic.
  double dirichlet_alpha = 0.0;
  /// Power-law per-client sample-count skew (data=sizeskew:<s> comm key):
  /// 0 = off; > 0 applies apply_sizeskew after the base partition, from its
  /// own stream (seed ^ 0x517E55EDull) so the base shards are unchanged.
  double sizeskew_s = 0.0;

  /// Client population (population= comm key): device classes with
  /// correlated compute/link/data-size draws plus an availability model
  /// sampled on the virtual clock at each round open — only eligible
  /// clients enter the scheduler's cohort draw (per edge cohort under
  /// kHier). Empty (the default) keeps the flat always-available pool and
  /// consumes no extra randomness. Requires a barrier scheduler; mutually
  /// exclusive with `heterogeneous` (the population owns the link draws).
  PopulationConfig population;

  /// Fold the comm-level keys of a parsed codec spec (downlink=, downmode=,
  /// ef=, topology=, backhaul=, backhaul<k>=, edgemode=, edgeef=, shard=,
  /// transport=, checkpoint=) into this config; the spec's codec-level keys
  /// are unaffected.
  void apply_comm_spec(const CodecSpec& spec);

  /// Throws InvalidArgument on degenerate settings (zero clients/rounds/
  /// threads, bad jitter, empty evaluation, malformed downlink spec,
  /// degenerate topology).
  void validate() const;
};

/// What happened to one dispatched update (or shipped partial).
enum class DeliveryStatus : std::uint8_t {
  kAggregated = 0,  // decoded and folded into its aggregation point
  kDropped = 1,     // client failed mid-round; nothing uploaded
  kEvicted = 2,     // still in flight at the straggler deadline
  kLate = 3,        // arrived after its (buffered) parent already shipped
  kIneligible = 4,  // unavailable at round open; never dispatched
};

std::string delivery_status_name(DeliveryStatus status);

/// One update delivery: who sent it, when (virtual clock), over which link,
/// what the compression policy decided for it, and whether compressing for
/// that link was worthwhile (Eqn 1).
struct ClientTraceEntry {
  std::size_t client = 0;
  int dispatch_round = 0;         // server round when the client was sent
  double dispatch_seconds = 0.0;  // virtual time of dispatch
  double arrival_seconds = 0.0;   // virtual time the update was folded
  double transfer_seconds = 0.0;  // over this client's own link
  double weight = 0.0;            // samples x staleness scale
  std::size_t payload_bytes = 0;
  std::size_t raw_bytes = 0;
  /// Policy decisions for this update: mean requested relative bound over
  /// lossy-path tensors (round-/magnitude-aware policies vary it per
  /// dispatch) and the per-path tensor tallies.
  double bound_value = 0.0;
  std::size_t lossy_tensors = 0;
  std::size_t lossless_tensors = 0;
  std::size_t raw_tensors = 0;
  std::size_t sparse_tensors = 0;
  /// Downlink leg of this delivery: broadcast bytes charged against this
  /// client's link and the virtual seconds they took (0 when the broadcast
  /// is free/lossless).
  std::size_t downlink_bytes = 0;
  double downlink_seconds = 0.0;
  /// L2 norm of this client's carried error-feedback residual after this
  /// update was encoded (0 with EF off or a lossless codec).
  double ef_residual_norm = 0.0;
  /// Aggregation point that folded this update: 0 = the root (flat runs),
  /// 1 + AggregationTree::flat_index(0, e) for tier-1 edge e under a
  /// hierarchical topology (matching FlRunResult::peak_decoded_per_node
  /// indexing).
  std::size_t node = 0;
  /// Churn outcome: only kAggregated entries contributed to the round's
  /// aggregate (and to the per-round byte/second totals); dropped, evicted
  /// and late entries carry weight 0.
  DeliveryStatus status = DeliveryStatus::kAggregated;
  /// Population segment this client belongs to ("" when no population= key
  /// is active) — lets figures be re-plotted offline per device class.
  std::string device_class;
  /// False only for kIneligible entries (the client was unavailable at
  /// round open and never dispatched).
  bool eligible = true;
  net::CompressionDecision decision;  // Eqn (1) against this client's link
};

/// One interior partial delivery (hierarchical topologies): how many leaf
/// updates the partial folded and the weight it carries, the uplink leg of
/// the re-encoded partial, and the downstream share of the downlink
/// broadcast charged to the shipping node's link.
struct EdgeTraceEntry {
  std::size_t edge = 0;    // shipping node's tree-wide flat interior index
  std::size_t tier = 0;    // shipping node's 1-based tier
  std::size_t cohort = 0;  // leaf updates folded into this partial
  double weight = 0.0;     // total aggregation weight the partial carries
  std::size_t payload_bytes = 0;  // encoded partial on this node's uplink
  std::size_t raw_bytes = 0;      // uncompressed partial bytes
  double encode_seconds = 0.0;    // node-side re-encode wall time
  double decode_seconds = 0.0;    // parent-side decode wall time
  double transfer_seconds = 0.0;  // uplink virtual seconds
  double arrival_seconds = 0.0;   // virtual time the partial merged upstream
  std::size_t downlink_bytes = 0;  // broadcast bytes over this node's link
  double downlink_seconds = 0.0;   // virtual seconds of those hops
  /// Edge-side EF residual norm after this partial's encode (0 unless
  /// edgeef=on rides a lossy tier codec).
  double ef_residual_norm = 0.0;
  /// kAggregated, or kLate for a partial that reached a buffered parent
  /// after it had already shipped (its weight never merged upstream).
  DeliveryStatus status = DeliveryStatus::kAggregated;
};

/// Per-round accounting. Client-side quantities are means over the round's
/// participants; comm_seconds is the mean simulated client->server transfer
/// (compression and decompression included separately).
struct RoundRecord {
  int round = 0;
  double accuracy = 0.0;
  double train_seconds = 0.0;       // mean participant local-training time
  double compress_seconds = 0.0;    // mean participant update-encoding time
  double decompress_seconds = 0.0;  // mean server decoding time per update
  double comm_seconds = 0.0;        // mean simulated transfer time per update
  double eval_seconds = 0.0;
  double mean_loss = 0.0;
  std::size_t bytes_sent = 0;       // total compressed bytes, participants
  std::size_t raw_bytes = 0;        // total uncompressed bytes, participants
  std::size_t participants = 0;     // updates folded into this aggregation
  /// Availability split at round open: clients whose eligibility draw
  /// passed / failed. With no population active every member is eligible
  /// (eligible_clients == the run's client count, ineligible_clients == 0).
  std::size_t eligible_clients = 0;
  std::size_t ineligible_clients = 0;
  double virtual_seconds = 0.0;     // virtual clock at aggregation time
  // ---- downlink (server->client broadcast) leg, zeros when free ----
  std::size_t downlink_bytes = 0;      // total broadcast bytes delivered
  std::size_t downlink_raw_bytes = 0;  // total uncompressed broadcast bytes
  double downlink_seconds = 0.0;        // mean broadcast transfer / client
  double downlink_encode_seconds = 0.0; // mean broadcast encode / client
  double downlink_decode_seconds = 0.0; // mean client-side decode
  /// Mean per-participant error-feedback residual norm (0 with EF off).
  double mean_ef_residual_norm = 0.0;
  /// Mean client-side seconds decoding the own payload for the EF residual
  /// (the extra codec work EF costs; 0 with EF off or a lossless uplink).
  double ef_decode_seconds = 0.0;
  // ---- backhaul (interior uplink) tiers, zeros/empty on flat runs ----
  std::size_t backhaul_bytes = 0;      // total MERGED partial bytes, all tiers
  std::size_t backhaul_raw_bytes = 0;  // total uncompressed partial bytes
  double backhaul_seconds = 0.0;         // mean uplink transfer / partial
  double backhaul_encode_seconds = 0.0;  // mean node re-encode / partial
  double backhaul_decode_seconds = 0.0;  // mean parent decode / partial
  /// Per-tier split of backhaul_bytes / backhaul_raw_bytes: entry t counts
  /// the merged partials shipped BY tier t+1 nodes. Sums to the totals —
  /// the byte-accounting invariant the property harness pins.
  std::vector<std::size_t> backhaul_tier_bytes;
  std::vector<std::size_t> backhaul_tier_raw_bytes;
  /// Total root->edge broadcast bytes (the downlink's first hop; the
  /// per-client downlink_bytes above count only the edge->client leg).
  std::size_t backhaul_downlink_bytes = 0;
  double backhaul_downlink_seconds = 0.0;  // mean root->edge hop / edge
  /// Total aggregation weight the root actually merged this round — the
  /// conserved quantity: equal to the summed weights of this round's
  /// kAggregated client entries minus what buffered parents shipped
  /// without (late partials' folded weight).
  double aggregate_weight = 0.0;
  /// Tier-1 edges that crashed before this round opened (tree-wide flat
  /// indices); their cohorts were re-sharded to the surviving siblings.
  std::vector<std::size_t> crashed_nodes;
  std::vector<ClientTraceEntry> clients;  // one entry per dispatched update
  std::vector<EdgeTraceEntry> edges;      // one entry per shipped partial
  double compression_ratio() const {
    return bytes_sent > 0 ? static_cast<double>(raw_bytes) /
                                static_cast<double>(bytes_sent)
                          : 0.0;
  }
  double downlink_compression_ratio() const {
    return downlink_bytes > 0 ? static_cast<double>(downlink_raw_bytes) /
                                    static_cast<double>(downlink_bytes)
                              : 0.0;
  }
  double backhaul_compression_ratio() const {
    return backhaul_bytes > 0 ? static_cast<double>(backhaul_raw_bytes) /
                                    static_cast<double>(backhaul_bytes)
                              : 0.0;
  }
};

struct FlRunResult {
  std::vector<RoundRecord> rounds;
  double final_accuracy = 0.0;
  double total_wall_seconds = 0.0;
  double total_virtual_seconds = 0.0;  // virtual clock at run end
  /// Peak number of simultaneously-alive decoded payloads at the ROOT —
  /// 1 under the streaming runtime, independent of the client count.
  std::size_t peak_decoded_updates = 0;
  /// Peak simultaneously-alive decoded payloads per aggregation point:
  /// index 0 = the root, 1 + AggregationTree::flat_index(level, i) for
  /// interior nodes (flat runs carry just the root entry). Streaming keeps
  /// every node at 1 regardless of cohort size — the O(fanout) memory
  /// claim is per NODE, never per tree.
  std::vector<std::size_t> peak_decoded_per_node;
  /// Events (client arrivals or partials) that landed after their round
  /// had already closed — possible only when buffered interior nodes ship
  /// early. Counted instead of traced: the round's record is immutable
  /// once closed.
  std::size_t late_events = 0;
  std::string scheduler;
};

/// One simulated link per client: the population's correlated device-class
/// profiles when `population` is non-null, else the heterogeneous config or
/// the shared fallback profile. Shared by the in-process coordinator and
/// the distributed edge runtime so both transports see identical links.
net::HeterogeneousNetwork build_population_network(
    const FlRunConfig& config, const ClientPopulation* population);

/// The full client-shard pipeline, shared by the in-process coordinator and
/// the distributed edge runtime: IID deal or Dirichlet label skew from
/// Rng(config.seed), optional power-law size skew from its own stream, then
/// per-client population data_weight truncation (deterministic prefix of
/// the already-shuffled shard — no extra randomness).
std::vector<std::vector<std::size_t>> build_client_shards(
    const data::Dataset& train, const FlRunConfig& config,
    const ClientPopulation* population);

class FlCoordinator {
 public:
  /// `scheduler` defaults (nullptr) to the synchronous full-participation
  /// barrier, which over a homogeneous network reproduces the classic
  /// round-loop trajectory exactly.
  FlCoordinator(const nn::ModelConfig& model_config, data::DatasetPtr train,
                data::DatasetPtr test, FlRunConfig config,
                UpdateCodecPtr codec, SchedulerPtr scheduler = nullptr);

  /// Pump events until the configured number of aggregations completes and
  /// return the full trace.
  FlRunResult run();

  FlServer& server() { return server_; }
  const net::HeterogeneousNetwork& network() const { return network_; }
  /// Null when the broadcast is free (no downlink_spec configured).
  const DownlinkChannel* downlink() const { return downlink_.get(); }
  /// Null on flat runs; the edge tier under TopologyMode::kHier.
  const AggregationTree* topology() const { return tree_.get(); }

 private:
  nn::ModelConfig model_config_;
  data::DatasetPtr test_;
  FlRunConfig config_;
  UpdateCodecPtr codec_;
  SchedulerPtr scheduler_;
  FlServer server_;
  // Declared before network_: the member initializer builds the links from
  // the population's correlated device-class draws.
  std::unique_ptr<ClientPopulation> population_;  // null = no population
  net::HeterogeneousNetwork network_;
  std::vector<std::unique_ptr<FlClient>> clients_;
  std::vector<double> compute_seconds_;  // virtual training time per client
  std::unique_ptr<DownlinkChannel> downlink_;  // null = free broadcast
  std::unique_ptr<AggregationTree> tree_;      // null = flat star
  std::vector<ErrorFeedbackAccumulator> feedback_;  // one per client
};

}  // namespace fedsz::core

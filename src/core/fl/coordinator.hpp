// FL coordinator: the APPFL/FedAvg driver. Partitions a training set across
// clients, runs communication rounds (clients train AND compress their
// updates concurrently on a thread pool — the analogue of the paper's
// MPI-rank-per-client simulation), models the transfer over a
// SimulatedNetwork, decodes all received payloads concurrently on the same
// pool, aggregates on the server, and records per-round accuracy plus a
// full timing/byte breakdown (the raw material for Figures 4-9). A parallel
// FedSzCodec (FedSzConfig::parallelism) additionally fans each client's
// chunk pipeline out, nesting chunk-level under client-level concurrency.
#pragma once

#include "core/fl/client.hpp"
#include "core/fl/server.hpp"
#include "core/update_codec.hpp"
#include "data/partition.hpp"
#include "net/bandwidth.hpp"

namespace fedsz::core {

struct FlRunConfig {
  std::size_t clients = 4;
  int rounds = 10;
  ClientConfig client;
  net::NetworkProfile network{10.0, 0.0};  // the paper's 10 Mbps edge link
  std::size_t eval_limit = 512;            // test samples per evaluation
  std::size_t threads = 4;
  std::uint64_t seed = 42;
  bool evaluate_every_round = true;
};

/// Per-round accounting. Client-side quantities are means over clients;
/// comm_seconds is the mean simulated client->server transfer (compression
/// and decompression included separately).
struct RoundRecord {
  int round = 0;
  double accuracy = 0.0;
  double train_seconds = 0.0;       // mean client local-training time
  double compress_seconds = 0.0;    // mean client update-encoding time
  double decompress_seconds = 0.0;  // mean server decoding time per update
  double comm_seconds = 0.0;        // mean simulated transfer time per update
  double eval_seconds = 0.0;
  double mean_loss = 0.0;
  std::size_t bytes_sent = 0;       // total compressed bytes, all clients
  std::size_t raw_bytes = 0;        // total uncompressed bytes, all clients
  double compression_ratio() const {
    return bytes_sent > 0 ? static_cast<double>(raw_bytes) /
                                static_cast<double>(bytes_sent)
                          : 0.0;
  }
};

struct FlRunResult {
  std::vector<RoundRecord> rounds;
  double final_accuracy = 0.0;
  double total_wall_seconds = 0.0;
};

class FlCoordinator {
 public:
  FlCoordinator(const nn::ModelConfig& model_config, data::DatasetPtr train,
                data::DatasetPtr test, FlRunConfig config,
                UpdateCodecPtr codec);

  /// Run the configured number of rounds and return the full trace.
  FlRunResult run();

  FlServer& server() { return server_; }

 private:
  nn::ModelConfig model_config_;
  data::DatasetPtr test_;
  FlRunConfig config_;
  UpdateCodecPtr codec_;
  FlServer server_;
  std::vector<std::unique_ptr<FlClient>> clients_;
};

}  // namespace fedsz::core

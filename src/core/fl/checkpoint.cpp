#include "core/fl/checkpoint.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/bytebuffer.hpp"
#include "util/crc32.hpp"

namespace fedsz::core {

namespace {

void put_rng(ByteWriter& out, const Rng::State& s) {
  for (int i = 0; i < 4; ++i) out.put_u64(s.words[i]);
  out.put_f64(s.cached);
  out.put_u8(s.has_cached ? 1 : 0);
}

Rng::State get_rng(ByteReader& in) {
  Rng::State s;
  for (int i = 0; i < 4; ++i) s.words[i] = in.get_u64();
  s.cached = in.get_f64();
  const std::uint8_t flag = in.get_u8();
  if (flag > 1) throw CorruptStream("checkpoint: bad RNG cache flag");
  s.has_cached = flag == 1;
  return s;
}

void put_dicts(ByteWriter& out, const std::vector<StateDict>& dicts) {
  out.put_varint(dicts.size());
  for (const StateDict& dict : dicts) out.put_blob(dict.serialize());
}

std::vector<StateDict> get_dicts(ByteReader& in) {
  const std::uint64_t count = in.get_varint();
  // Each entry costs at least a length byte; anything bigger than the
  // remaining bytes is a corrupt count, not a huge valid section.
  if (count > in.remaining())
    throw CorruptStream("checkpoint: state-dict count exceeds the payload");
  std::vector<StateDict> dicts;
  dicts.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i)
    dicts.push_back(StateDict::deserialize(in.get_blob_view()));
  return dicts;
}

}  // namespace

Bytes serialize_checkpoint(const CheckpointState& state) {
  ByteWriter body;
  body.put_varint(state.completed_rounds);
  body.put_f64(state.virtual_now);
  body.put_u64(state.clock_next_seq);
  body.put_u32(state.config_fingerprint);
  body.put_blob(state.global_state.serialize());
  body.put_string(state.aggregator_name);
  body.put_blob({state.aggregator_state.data(), state.aggregator_state.size()});
  put_rng(body, state.cohort_rng);
  put_rng(body, state.failure_rng);
  put_rng(body, state.eligibility_rng);
  put_dicts(body, state.client_residuals);
  put_dicts(body, state.downlink_sessions);
  put_dicts(body, state.edge_residuals);

  ByteWriter out;
  out.reserve(body.size() + 16);
  out.put_u32(kCheckpointMagic);
  out.put_u8(kCheckpointVersion);
  out.put_u32(util::crc32(body.view()));
  out.put_varint(body.size());
  out.put_bytes(body.view());
  return out.finish();
}

CheckpointState parse_checkpoint(ByteSpan bytes) {
  ByteReader header(bytes);
  try {
    if (header.get_u32() != kCheckpointMagic)
      throw CorruptStream("checkpoint: bad magic");
    const std::uint8_t version = header.get_u8();
    if (version != kCheckpointVersion)
      throw CorruptStream("checkpoint: unsupported version " +
                          std::to_string(version));
    const std::uint32_t crc = header.get_u32();
    const std::uint64_t length = header.get_varint();
    if (length != header.remaining())
      throw CorruptStream("checkpoint: body length mismatch");
    const ByteSpan body = header.get_bytes(static_cast<std::size_t>(length));
    if (util::crc32(body) != crc)
      throw CorruptStream("checkpoint: body CRC mismatch");

    ByteReader in(body);
    CheckpointState state;
    state.completed_rounds = in.get_varint();
    state.virtual_now = in.get_f64();
    state.clock_next_seq = in.get_u64();
    state.config_fingerprint = in.get_u32();
    state.global_state = StateDict::deserialize(in.get_blob_view());
    state.aggregator_name = in.get_string();
    const ByteSpan agg = in.get_blob_view();
    state.aggregator_state.assign(agg.begin(), agg.end());
    state.cohort_rng = get_rng(in);
    state.failure_rng = get_rng(in);
    state.eligibility_rng = get_rng(in);
    state.client_residuals = get_dicts(in);
    state.downlink_sessions = get_dicts(in);
    state.edge_residuals = get_dicts(in);
    if (!in.done())
      throw CorruptStream("checkpoint: trailing bytes after the body");
    return state;
  } catch (const CorruptStream&) {
    throw;
  } catch (const std::exception& error) {
    // Truncation inside ByteReader and shape errors inside
    // StateDict::deserialize surface as one checkpoint-level failure.
    throw CorruptStream(std::string("checkpoint: ") + error.what());
  }
}

void write_checkpoint(const std::string& path, const CheckpointState& state) {
  const Bytes bytes = serialize_checkpoint(state);
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (!file)
    throw InvalidArgument("checkpoint: cannot open '" + tmp +
                          "': " + std::strerror(errno));
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool flushed = std::fflush(file) == 0;
  std::fclose(file);
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    throw InvalidArgument("checkpoint: short write to '" + tmp + "'");
  }
  // rename(2) is atomic within a filesystem: observers see the old file or
  // the new one, never a torn mix — the kill-anywhere guarantee.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw InvalidArgument("checkpoint: cannot rename '" + tmp + "' to '" +
                          path + "': " + std::strerror(errno));
  }
}

std::optional<CheckpointState> read_checkpoint(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (!file) return std::nullopt;
  Bytes bytes;
  std::uint8_t buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0)
    bytes.insert(bytes.end(), buffer, buffer + got);
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error)
    throw InvalidArgument("checkpoint: read error on '" + path + "'");
  return parse_checkpoint({bytes.data(), bytes.size()});
}

std::uint32_t run_fingerprint(const FlRunConfig& config,
                              const nn::ModelConfig& model) {
  ByteWriter out;
  out.put_u64(config.seed);
  out.put_varint(config.clients);
  out.put_f32(config.client.sgd.learning_rate);
  out.put_f32(config.client.sgd.momentum);
  out.put_f32(config.client.sgd.weight_decay);
  out.put_varint(config.client.batch_size);
  out.put_varint(static_cast<std::uint64_t>(config.client.local_epochs));
  out.put_f64(config.network.bandwidth_mbps);
  out.put_f64(config.network.latency_s);
  out.put_u8(config.heterogeneous ? 1 : 0);
  if (config.heterogeneous) {
    const net::HeterogeneousNetworkConfig& h = *config.heterogeneous;
    out.put_u8(static_cast<std::uint8_t>(h.distribution));
    out.put_f64(h.edge_min_mbps);
    out.put_f64(h.edge_max_mbps);
    out.put_f64(h.wan_median_mbps);
    out.put_f64(h.wan_log_sigma);
    out.put_f64(h.two_tier_fast_fraction);
    out.put_f64(h.two_tier_fast_mbps);
    out.put_f64(h.two_tier_slow_mbps);
    out.put_f64(h.latency_s);
    out.put_u64(h.seed);
  }
  out.put_varint(config.eval_limit);
  out.put_u8(config.evaluate_every_round ? 1 : 0);
  out.put_f64(config.compute_seconds_per_sample);
  out.put_f64(config.compute_jitter);
  out.put_string(config.downlink_spec);
  out.put_u8(static_cast<std::uint8_t>(config.downlink_mode));
  out.put_u8(config.error_feedback ? 1 : 0);
  const TopologyConfig& t = config.topology;
  out.put_u8(static_cast<std::uint8_t>(t.mode));
  out.put_varint(t.tiers.size());
  for (const std::size_t fan : t.tiers) out.put_varint(fan);
  out.put_varint(t.fanout);
  out.put_string(t.backhaul_spec);
  out.put_varint(t.tier_backhaul_specs.size());
  for (const std::string& spec : t.tier_backhaul_specs) out.put_string(spec);
  out.put_f64(t.backhaul_network.bandwidth_mbps);
  out.put_f64(t.backhaul_network.latency_s);
  out.put_u8(t.backhaul_heterogeneous ? 1 : 0);
  if (t.backhaul_heterogeneous) {
    const net::HeterogeneousNetworkConfig& h = *t.backhaul_heterogeneous;
    out.put_u8(static_cast<std::uint8_t>(h.distribution));
    out.put_f64(h.edge_min_mbps);
    out.put_f64(h.edge_max_mbps);
    out.put_f64(h.wan_median_mbps);
    out.put_f64(h.wan_log_sigma);
    out.put_f64(h.two_tier_fast_fraction);
    out.put_f64(h.two_tier_fast_mbps);
    out.put_f64(h.two_tier_slow_mbps);
    out.put_f64(h.latency_s);
    out.put_u64(h.seed);
  }
  out.put_u8(static_cast<std::uint8_t>(t.edge_mode));
  out.put_varint(t.edge_buffer);
  out.put_u8(t.edge_error_feedback ? 1 : 0);
  out.put_u8(static_cast<std::uint8_t>(t.sharding));
  out.put_u64(t.shard_seed);
  out.put_f64(config.failures.dropout_rate);
  out.put_f64(config.failures.edge_failure_rate);
  out.put_f64(config.failures.straggler_deadline_seconds);
  out.put_u64(config.failures.seed);
  const PopulationConfig& p = config.population;
  out.put_string(p.preset);
  out.put_varint(p.mix.size());
  for (const DeviceClassShare& share : p.mix) {
    out.put_string(share.name);
    out.put_f64(share.weight);
  }
  out.put_u8(static_cast<std::uint8_t>(p.availability));
  out.put_f64(p.flat_availability);
  out.put_f64(p.period_seconds);
  out.put_f64(p.phase_jitter);
  out.put_f64(p.dropout_rate);
  out.put_u64(p.seed);
  out.put_f64(config.sizeskew_s);
  out.put_string(model.arch);
  out.put_varint(static_cast<std::uint64_t>(model.in_channels));
  out.put_varint(static_cast<std::uint64_t>(model.image_size));
  out.put_varint(static_cast<std::uint64_t>(model.num_classes));
  out.put_u8(static_cast<std::uint8_t>(model.scale));
  out.put_u64(model.seed);
  return util::crc32(out.view());
}

}  // namespace fedsz::core

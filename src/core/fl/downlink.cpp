#include "core/fl/downlink.hpp"

namespace fedsz::core {

std::string downlink_mode_name(DownlinkMode mode) {
  return mode == DownlinkMode::kDelta ? "delta" : "full";
}

namespace {

EncodeContext broadcast_context(int round, int client_id) {
  EncodeContext ctx;
  ctx.round = round;
  ctx.client_id = client_id;
  return ctx;
}

}  // namespace

DownlinkChannel::DownlinkChannel(DownlinkConfig config, std::size_t clients)
    : config_(std::move(config)), sessions_(clients) {
  if (!config_.codec)
    throw InvalidArgument("DownlinkChannel: null broadcast codec");
  if (clients == 0)
    throw InvalidArgument("DownlinkChannel: need at least one client");
}

BroadcastPayload DownlinkChannel::encode_broadcast(const StateDict& global,
                                                   int round) const {
  UpdateCodec::Encoded encoded =
      config_.codec->encode(global, broadcast_context(round, /*client_id=*/-1));
  return {std::move(encoded.payload), encoded.stats};
}

StateDict DownlinkChannel::decode_broadcast(ByteSpan payload,
                                            CompressionStats* stats) const {
  return config_.codec->decode(payload, stats);
}

BroadcastPayload DownlinkChannel::encode_for_client(std::size_t client,
                                                    const StateDict& global,
                                                    int round) const {
  const StateDict& acked = acknowledged(client);
  if (acked.empty()) {
    // First contact: nothing acknowledged yet, ship the full model.
    UpdateCodec::Encoded encoded = config_.codec->encode(
        global, broadcast_context(round, static_cast<int>(client)));
    return {std::move(encoded.payload), encoded.stats};
  }
  StateDict delta = global;
  delta.add_scaled_matched(acked, -1.0f);
  UpdateCodec::Encoded encoded = config_.codec->encode(
      delta, broadcast_context(round, static_cast<int>(client)));
  return {std::move(encoded.payload), encoded.stats};
}

StateDict DownlinkChannel::receive(std::size_t client, ByteSpan payload,
                                   CompressionStats* stats) {
  StateDict decoded = config_.codec->decode(payload, stats);
  StateDict& acked = sessions_.at(client);
  if (!acked.empty()) {
    // decoded is the delta; the model is acknowledged + delta, laid out in
    // the session's (stable) entry order.
    StateDict model = acked;
    model.add_scaled_matched(decoded, 1.0f);
    decoded = std::move(model);
  }
  // Both ends advance to the reconstruction the client now holds, so the
  // next delta is encoded against exactly this state.
  acked = decoded;
  return decoded;
}

const StateDict& DownlinkChannel::acknowledged(std::size_t client) const {
  return sessions_.at(client);
}

void DownlinkChannel::restore_sessions(std::vector<StateDict> sessions) {
  if (sessions.size() != sessions_.size())
    throw InvalidArgument(
        "DownlinkChannel: restored session count does not match the client "
        "count");
  sessions_ = std::move(sessions);
}

}  // namespace fedsz::core

// Checkpoint/resume serialization for the federation coordinator. A
// checkpoint captures everything that evolves across rounds — the global
// model, the aggregation strategy's cross-round state (server momentum /
// Adam moments), per-client error-feedback residuals, kDelta downlink
// sessions, edge-side EF residuals, both coordinator RNG streams
// mid-sequence, and the virtual clock — so a run restored from it finishes
// BIT-IDENTICAL to one that never stopped (the resume property test pins
// this round for round). Clients themselves are stateless across rounds
// (each round rebuilds its loader from a fixed seed), which is what keeps
// this set sufficient.
//
// On-disk container: magic/version header, CRC-32-guarded body, written
// via a temp file + rename so a kill at any instant leaves either the
// previous checkpoint or the new one — never a torn file. Parsing has the
// same hardened posture as the wire/bitstream formats: any corruption
// throws CorruptStream before state is applied.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/fl/coordinator.hpp"
#include "tensor/state_dict.hpp"
#include "util/rng.hpp"

namespace fedsz::core {

inline constexpr std::uint32_t kCheckpointMagic = 0x314B4346u;  // "FCK1" LE
/// v2 added the population-eligibility RNG stream after failure_rng.
inline constexpr std::uint8_t kCheckpointVersion = 2;

struct CheckpointState {
  /// Rounds fully aggregated when the checkpoint was taken; the resumed
  /// run continues with round index `completed_rounds`.
  std::uint64_t completed_rounds = 0;
  /// Virtual clock at the checkpoint (and the tie-break sequence counter,
  /// so resumed event ordering matches the uninterrupted run exactly).
  double virtual_now = 0.0;
  std::uint64_t clock_next_seq = 0;
  /// CRC over the run's trajectory-determining configuration; a resume
  /// against a differently-configured run fails loudly instead of
  /// continuing a subtly different experiment.
  std::uint32_t config_fingerprint = 0;
  StateDict global_state;
  /// Strategy guard + its serialized mutable state (Aggregator::save_state).
  std::string aggregator_name;
  Bytes aggregator_state;
  /// Coordinator RNG streams, mid-sequence.
  Rng::State cohort_rng;
  Rng::State failure_rng;
  /// Population eligibility draws (advanced every round open whenever a
  /// population is active; idle otherwise, but always serialized).
  Rng::State eligibility_rng;
  /// Per-client uplink EF residuals (empty dict = none carried yet).
  std::vector<StateDict> client_residuals;
  /// kDelta downlink sessions, client order (empty vector when the run has
  /// no delta downlink).
  std::vector<StateDict> downlink_sessions;
  /// Edge-side EF residuals in tree-wide flat interior-node order (empty
  /// vector on flat runs or with edge EF off).
  std::vector<StateDict> edge_residuals;
};

Bytes serialize_checkpoint(const CheckpointState& state);
/// Throws CorruptStream on bad magic/version/CRC or a truncated body.
CheckpointState parse_checkpoint(ByteSpan bytes);

/// Write `state` to `path` atomically: serialize to `path`.tmp, fsync,
/// rename over `path`. Throws InvalidArgument on I/O failure.
void write_checkpoint(const std::string& path, const CheckpointState& state);

/// Load the checkpoint at `path`; nullopt when the file does not exist
/// (a resume before the first checkpoint starts fresh). Corrupt contents
/// throw CorruptStream.
std::optional<CheckpointState> read_checkpoint(const std::string& path);

/// CRC over every trajectory-determining knob of (config, model): seeds,
/// client/optimizer settings, links, comm model, topology, churn schedule.
/// Deliberately EXCLUDES rounds (a resume may extend the campaign),
/// threads (trajectories are thread-count-invariant), transport, and the
/// checkpoint settings themselves.
std::uint32_t run_fingerprint(const FlRunConfig& config,
                              const nn::ModelConfig& model);

}  // namespace fedsz::core

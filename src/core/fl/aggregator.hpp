// Server-side aggregation strategies. The paper evaluates FedAvg (McMahan
// et al. 2017) through APPFL, whose server supports a family of aggregation
// rules; this module provides the same pluggability so compression studies
// can be repeated under momentum/adaptive servers:
//
//   FedAvg   weighted mean of client states (the paper's configuration)
//   FedAvgM  server momentum over the aggregate pseudo-gradient
//   FedAdam  Adam-style adaptive server step (Reddi et al. 2021)
#pragma once

#include <memory>
#include <vector>

#include "tensor/state_dict.hpp"

namespace fedsz::core {

class Aggregator {
 public:
  virtual ~Aggregator() = default;
  virtual std::string name() const = 0;

  /// Fold one round of client updates (state, sample count) into `global`.
  virtual void aggregate(
      StateDict& global,
      const std::vector<std::pair<StateDict, std::size_t>>& updates) = 0;
};

using AggregatorPtr = std::shared_ptr<Aggregator>;

/// Sample-count-weighted mean over full client states.
AggregatorPtr make_fedavg();

/// FedAvg with server momentum: v <- beta v + (avg - global); global += v.
AggregatorPtr make_fedavgm(float beta = 0.9f);

struct FedAdamConfig {
  float learning_rate = 0.3f;  // server step size on the pseudo-gradient
  float beta1 = 0.9f;
  float beta2 = 0.99f;
  float epsilon = 1e-3f;       // adaptivity floor (tau in Reddi et al.)
};

/// Adaptive server optimizer over the round's pseudo-gradient.
AggregatorPtr make_fedadam(FedAdamConfig config = {});

/// Helper shared by all strategies: the weighted mean of updates, with the
/// structure of `reference`.
StateDict weighted_mean(
    const StateDict& reference,
    const std::vector<std::pair<StateDict, std::size_t>>& updates);

}  // namespace fedsz::core

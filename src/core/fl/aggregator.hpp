// Server-side aggregation strategies. The paper evaluates FedAvg (McMahan
// et al. 2017) through APPFL, whose server supports a family of aggregation
// rules; this module provides the same pluggability so compression studies
// can be repeated under momentum/adaptive servers:
//
//   FedAvg   weighted mean of client states (the paper's configuration)
//   FedAvgM  server momentum over the aggregate pseudo-gradient
//   FedAdam  Adam-style adaptive server step (Reddi et al. 2021)
//
// Every strategy is built on a *streaming* weighted mean: the event-driven
// coordinator folds each decoded update into the accumulator the moment it
// arrives (begin_round / accumulate / finalize), so peak decoded-update
// memory is O(1) in the client count. The classic batch aggregate() — and
// the weighted_mean() helper — are thin wrappers over the same path.
#pragma once

#include <memory>
#include <vector>

#include "tensor/state_dict.hpp"
#include "util/bytebuffer.hpp"

namespace fedsz::core {

/// A weight-carrying partial mean: what an edge aggregator in a
/// hierarchical topology ships to its parent. Merging partials — each
/// folded with its carried `weight` through the same streaming path —
/// reproduces the weighted mean over every underlying update, and a
/// single partial merged into a fresh accumulator reproduces it
/// bit-exactly (the flat-equivalence regression pin relies on this).
struct PartialAggregate {
  StateDict mean;         // weighted mean over the folded updates
  double weight = 0.0;    // total aggregation weight the mean carries
  std::size_t count = 0;  // updates folded into it
};

/// Numerically-stable online weighted mean over state dicts (West 1979):
/// mean += (w_k / W_k) * (update_k - mean), with W_k the running weight
/// total. Entries are matched by name; folding an update identical to the
/// current mean leaves the mean bit-exact.
class StreamingMean {
 public:
  /// Start a round; the accumulator takes `reference`'s structure.
  void begin(const StateDict& reference);

  /// Fold one update with non-negative `weight` (sample count, optionally
  /// scaled by a staleness factor). Zero-weight updates are counted but
  /// contribute nothing.
  void add(const StateDict& update, double weight);

  /// Return the weighted mean and reset. Throws InvalidArgument when no
  /// update carried positive weight.
  StateDict finalize();

  /// Close as an intermediate node: return the mean WITH the weight it
  /// carries instead of dropping it. Unlike finalize(), an all-zero-weight
  /// partial is legal (weight 0; it merges as a no-op upstream) — only a
  /// round with no updates at all throws InvalidArgument.
  PartialAggregate finalize_partial();

  /// Abandon the round without producing a mean: frees the accumulator and
  /// returns to the pre-begin state. Legal at any time (including with no
  /// round open). The churn path needs this — an edge whose whole cohort
  /// dropped, or a round every straggler missed, closes empty instead of
  /// tripping finalize()'s no-updates guard.
  void abort();

  bool active() const { return active_; }
  std::size_t count() const { return count_; }
  double total_weight() const { return total_; }

 private:
  StateDict mean_;
  double total_ = 0.0;
  std::size_t count_ = 0;
  bool active_ = false;
};

class Aggregator {
 public:
  virtual ~Aggregator() = default;
  virtual std::string name() const = 0;

  // ---- streaming path (fold updates as they arrive) ----
  /// Open a round; the accumulator mirrors `global`'s structure.
  void begin_round(const StateDict& global);
  /// Fold one client update with aggregation weight `weight`.
  void accumulate(const StateDict& update, double weight);
  /// Apply the accumulated mean to `global` via the strategy's rule and
  /// close the round. Throws InvalidArgument when nothing was accumulated.
  void finalize(StateDict& global);

  // ---- hierarchical (multi-tier) path ----
  /// Close the round as an EDGE node: return the weight-carrying partial
  /// mean instead of applying the strategy rule. The strategy rule only
  /// ever runs at the root, where the global model lives.
  PartialAggregate finalize_partial();
  /// Root side: fold one edge's decoded partial `mean` carrying total
  /// aggregation weight `weight`. Exact: merging every edge's partial
  /// reproduces the weighted mean over all underlying client updates.
  void merge_partial(const StateDict& mean, double weight);
  /// Abandon the open round (no-op when none is open) — the empty-round
  /// path under failure injection.
  void abort_round();

  std::size_t accumulated() const { return mean_.count(); }
  bool round_open() const { return mean_.active(); }

  // ---- checkpoint path ----
  /// Serialize the strategy's mutable cross-round state (server momentum,
  /// Adam moments). FedAvg carries none and writes an empty section; the
  /// construction-time config (betas, learning rate) is NOT saved — the
  /// resuming run rebuilds the aggregator from its own config and restores
  /// only what training mutated. Must not be called mid-round.
  virtual void save_state(ByteWriter& out) const;
  /// Inverse of save_state. Throws CorruptStream on a malformed section.
  virtual void load_state(ByteReader& in);

  // ---- batch path: a thin wrapper over the streaming path ----
  /// Fold one round of client updates (state, sample count) into `global`.
  void aggregate(StateDict& global,
                 const std::vector<std::pair<StateDict, std::size_t>>& updates);

 protected:
  /// Strategy-specific rule folding the round's weighted mean into `global`.
  virtual void apply_mean(StateDict& global, const StateDict& mean) = 0;

 private:
  StreamingMean mean_;
};

using AggregatorPtr = std::shared_ptr<Aggregator>;

/// Sample-count-weighted mean over full client states.
AggregatorPtr make_fedavg();

/// FedAvg with server momentum: v <- beta v + (avg - global); global += v.
AggregatorPtr make_fedavgm(float beta = 0.9f);

struct FedAdamConfig {
  float learning_rate = 0.3f;  // server step size on the pseudo-gradient
  float beta1 = 0.9f;
  float beta2 = 0.99f;
  float epsilon = 1e-3f;       // adaptivity floor (tau in Reddi et al.)
};

/// Adaptive server optimizer over the round's pseudo-gradient.
AggregatorPtr make_fedadam(FedAdamConfig config = {});

/// Helper shared by all strategies: the weighted mean of updates, with the
/// structure of `reference`. Thin wrapper over StreamingMean.
StateDict weighted_mean(
    const StateDict& reference,
    const std::vector<std::pair<StateDict, std::size_t>>& updates);

}  // namespace fedsz::core

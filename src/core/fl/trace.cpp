#include "core/fl/trace.hpp"

namespace fedsz::core {

namespace {

util::JsonValue client_json(const ClientTraceEntry& t) {
  util::JsonValue v = util::JsonValue::object();
  v.set("client", t.client);
  v.set("dispatch_round", t.dispatch_round);
  v.set("dispatch_seconds", t.dispatch_seconds);
  v.set("arrival_seconds", t.arrival_seconds);
  v.set("transfer_seconds", t.transfer_seconds);
  v.set("weight", t.weight);
  v.set("payload_bytes", t.payload_bytes);
  v.set("raw_bytes", t.raw_bytes);
  v.set("bound_value", t.bound_value);
  v.set("lossy_tensors", t.lossy_tensors);
  v.set("lossless_tensors", t.lossless_tensors);
  v.set("raw_tensors", t.raw_tensors);
  v.set("sparse_tensors", t.sparse_tensors);
  v.set("downlink_bytes", t.downlink_bytes);
  v.set("downlink_seconds", t.downlink_seconds);
  v.set("ef_residual_norm", t.ef_residual_norm);
  v.set("node", t.node);
  v.set("device_class", t.device_class);
  v.set("eligible", t.eligible);
  v.set("status", delivery_status_name(t.status));
  util::JsonValue decision = util::JsonValue::object();
  decision.set("compressed_seconds", t.decision.compressed_seconds);
  decision.set("uncompressed_seconds", t.decision.uncompressed_seconds);
  decision.set("worthwhile", t.decision.worthwhile);
  v.set("decision", std::move(decision));
  return v;
}

util::JsonValue edge_json(const EdgeTraceEntry& t) {
  util::JsonValue v = util::JsonValue::object();
  v.set("edge", t.edge);
  v.set("tier", t.tier);
  v.set("cohort", t.cohort);
  v.set("weight", t.weight);
  v.set("payload_bytes", t.payload_bytes);
  v.set("raw_bytes", t.raw_bytes);
  v.set("encode_seconds", t.encode_seconds);
  v.set("decode_seconds", t.decode_seconds);
  v.set("transfer_seconds", t.transfer_seconds);
  v.set("arrival_seconds", t.arrival_seconds);
  v.set("downlink_bytes", t.downlink_bytes);
  v.set("downlink_seconds", t.downlink_seconds);
  v.set("ef_residual_norm", t.ef_residual_norm);
  v.set("status", delivery_status_name(t.status));
  return v;
}

util::JsonValue round_json(const RoundRecord& r) {
  util::JsonValue v = util::JsonValue::object();
  v.set("round", r.round);
  v.set("accuracy", r.accuracy);
  v.set("train_seconds", r.train_seconds);
  v.set("compress_seconds", r.compress_seconds);
  v.set("decompress_seconds", r.decompress_seconds);
  v.set("comm_seconds", r.comm_seconds);
  v.set("eval_seconds", r.eval_seconds);
  v.set("mean_loss", r.mean_loss);
  v.set("bytes_sent", r.bytes_sent);
  v.set("raw_bytes", r.raw_bytes);
  v.set("compression_ratio", r.compression_ratio());
  v.set("participants", r.participants);
  v.set("eligible_clients", r.eligible_clients);
  v.set("ineligible_clients", r.ineligible_clients);
  v.set("virtual_seconds", r.virtual_seconds);
  v.set("downlink_bytes", r.downlink_bytes);
  v.set("downlink_raw_bytes", r.downlink_raw_bytes);
  v.set("downlink_seconds", r.downlink_seconds);
  v.set("downlink_encode_seconds", r.downlink_encode_seconds);
  v.set("downlink_decode_seconds", r.downlink_decode_seconds);
  v.set("mean_ef_residual_norm", r.mean_ef_residual_norm);
  v.set("ef_decode_seconds", r.ef_decode_seconds);
  v.set("backhaul_bytes", r.backhaul_bytes);
  v.set("backhaul_raw_bytes", r.backhaul_raw_bytes);
  v.set("backhaul_seconds", r.backhaul_seconds);
  v.set("backhaul_encode_seconds", r.backhaul_encode_seconds);
  v.set("backhaul_decode_seconds", r.backhaul_decode_seconds);
  util::JsonValue tier_bytes = util::JsonValue::array();
  for (const std::size_t b : r.backhaul_tier_bytes) tier_bytes.push(b);
  v.set("backhaul_tier_bytes", std::move(tier_bytes));
  util::JsonValue tier_raw = util::JsonValue::array();
  for (const std::size_t b : r.backhaul_tier_raw_bytes) tier_raw.push(b);
  v.set("backhaul_tier_raw_bytes", std::move(tier_raw));
  v.set("backhaul_downlink_bytes", r.backhaul_downlink_bytes);
  v.set("backhaul_downlink_seconds", r.backhaul_downlink_seconds);
  v.set("aggregate_weight", r.aggregate_weight);
  util::JsonValue crashed = util::JsonValue::array();
  for (const std::size_t node : r.crashed_nodes) crashed.push(node);
  v.set("crashed_nodes", std::move(crashed));
  util::JsonValue clients = util::JsonValue::array();
  for (const ClientTraceEntry& t : r.clients) clients.push(client_json(t));
  v.set("clients", std::move(clients));
  util::JsonValue edges = util::JsonValue::array();
  for (const EdgeTraceEntry& t : r.edges) edges.push(edge_json(t));
  v.set("edges", std::move(edges));
  return v;
}

}  // namespace

util::JsonValue trace_json(const FlRunResult& result) {
  util::JsonValue v = util::JsonValue::object();
  v.set("scheduler", result.scheduler);
  v.set("final_accuracy", result.final_accuracy);
  v.set("total_wall_seconds", result.total_wall_seconds);
  v.set("total_virtual_seconds", result.total_virtual_seconds);
  v.set("peak_decoded_updates", result.peak_decoded_updates);
  util::JsonValue peaks = util::JsonValue::array();
  for (const std::size_t p : result.peak_decoded_per_node) peaks.push(p);
  v.set("peak_decoded_per_node", std::move(peaks));
  v.set("late_events", result.late_events);
  util::JsonValue rounds = util::JsonValue::array();
  for (const RoundRecord& r : result.rounds) rounds.push(round_json(r));
  v.set("rounds", std::move(rounds));
  return v;
}

void write_trace(const std::string& path, const FlRunResult& result) {
  util::write_json(path, trace_json(result));
}

}  // namespace fedsz::core

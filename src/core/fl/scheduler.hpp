// Participation policies for the event-driven federation runtime. A
// Scheduler decides which clients are dispatched when a server round opens,
// how many buffered arrivals trigger an aggregation, and how stale updates
// are down-weighted:
//
//   SyncScheduler          full-participation barrier — every client is
//                          dispatched each round and the server waits for
//                          all of them (the paper's APPFL/FedAvg setting).
//   SampledSyncScheduler   a seeded fraction of clients per round (the
//                          McMahan et al. client-sampling C < 1 regime),
//                          barrier over the sampled cohort.
//   BufferedAsyncScheduler FedBuff-style (Nguyen et al. 2022): every client
//                          trains continuously, the server aggregates as
//                          soon as `buffer_size` updates arrive, and stale
//                          updates are scaled by 1/(1+staleness)^exponent.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace fedsz::core {

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;

  /// Clients dispatched when server round `round` opens, drawn with `rng`
  /// (the coordinator's seeded sampling stream). Continuous policies are
  /// only consulted at round 0 — afterwards clients redispatch themselves
  /// on arrival. Under a hierarchical topology the coordinator consults
  /// the policy once per EDGE cohort: `clients` is then the edge's member
  /// count — after any crash re-sharding moved clients between siblings —
  /// and the returned indices are cohort-relative (positions within that
  /// round's member list, not global client ids).
  virtual std::vector<std::size_t> cohort(int round, std::size_t clients,
                                          Rng& rng) = 0;

  /// Buffered arrivals needed to trigger an aggregation, given the size of
  /// the dispatched cohort (sync barriers return the cohort size).
  virtual std::size_t aggregation_goal(std::size_t cohort_size) const = 0;

  /// Continuous policies redispatch a client with the freshest global the
  /// moment its update is folded; barrier policies wait for the next round.
  virtual bool continuous() const = 0;

  /// Aggregation-weight scale for an update dispatched at server round
  /// `dispatch_round` and folded while the server is at `server_round`.
  virtual double staleness_scale(int dispatch_round, int server_round) const;
};

using SchedulerPtr = std::shared_ptr<Scheduler>;

/// Full-participation synchronous barrier (the pre-event-runtime behavior).
SchedulerPtr make_sync_scheduler();

/// Sample `ceil(fraction * clients)` distinct clients per round (at least
/// one). `fraction` must be in (0, 1].
SchedulerPtr make_sampled_sync_scheduler(double fraction);

struct BufferedAsyncConfig {
  std::size_t buffer_size = 8;      // K: arrivals per aggregation
  double staleness_exponent = 0.5;  // weight ~ 1/(1+staleness)^exponent
};

/// FedBuff-style buffered asynchronous aggregation.
SchedulerPtr make_buffered_async_scheduler(BufferedAsyncConfig config = {});

}  // namespace fedsz::core

#include "core/fl/aggregator.hpp"

#include <cmath>

namespace fedsz::core {

StateDict weighted_mean(
    const StateDict& reference,
    const std::vector<std::pair<StateDict, std::size_t>>& updates) {
  if (updates.empty()) throw InvalidArgument("weighted_mean: no updates");
  std::size_t total = 0;
  for (const auto& [update, samples] : updates) total += samples;
  if (total == 0) throw InvalidArgument("weighted_mean: zero total samples");
  StateDict mean = reference.zeros_like();
  for (const auto& [update, samples] : updates) {
    const float weight = static_cast<float>(
        static_cast<double>(samples) / static_cast<double>(total));
    for (auto& [name, tensor] : mean.entries_mutable())
      tensor.add_scaled(update.get(name), weight);
  }
  return mean;
}

namespace {

class FedAvg final : public Aggregator {
 public:
  std::string name() const override { return "fedavg"; }
  void aggregate(StateDict& global,
                 const std::vector<std::pair<StateDict, std::size_t>>&
                     updates) override {
    global = weighted_mean(global, updates);
  }
};

class FedAvgM final : public Aggregator {
 public:
  explicit FedAvgM(float beta) : beta_(beta) {
    if (beta < 0.0f || beta >= 1.0f)
      throw InvalidArgument("FedAvgM: beta must be in [0, 1)");
  }
  std::string name() const override { return "fedavgm"; }
  void aggregate(StateDict& global,
                 const std::vector<std::pair<StateDict, std::size_t>>&
                     updates) override {
    const StateDict mean = weighted_mean(global, updates);
    if (velocity_.empty()) velocity_ = global.zeros_like();
    // v <- beta v + (mean - global); global <- global + v
    for (std::size_t i = 0; i < velocity_.entries().size(); ++i) {
      Tensor& v = velocity_.entries_mutable()[i].second;
      const Tensor& m = mean.entries()[i].second;
      Tensor& g = global.entries_mutable()[i].second;
      for (std::size_t k = 0; k < v.numel(); ++k) {
        v[k] = beta_ * v[k] + (m[k] - g[k]);
        g[k] += v[k];
      }
    }
  }

 private:
  float beta_;
  StateDict velocity_;
};

class FedAdam final : public Aggregator {
 public:
  explicit FedAdam(FedAdamConfig config) : config_(config) {
    if (!(config.learning_rate > 0.0f))
      throw InvalidArgument("FedAdam: learning rate must be positive");
  }
  std::string name() const override { return "fedadam"; }
  void aggregate(StateDict& global,
                 const std::vector<std::pair<StateDict, std::size_t>>&
                     updates) override {
    const StateDict mean = weighted_mean(global, updates);
    if (m_.empty()) {
      m_ = global.zeros_like();
      v_ = global.zeros_like();
    }
    for (std::size_t i = 0; i < m_.entries().size(); ++i) {
      Tensor& m = m_.entries_mutable()[i].second;
      Tensor& v = v_.entries_mutable()[i].second;
      const Tensor& avg = mean.entries()[i].second;
      Tensor& g = global.entries_mutable()[i].second;
      for (std::size_t k = 0; k < m.numel(); ++k) {
        const float delta = avg[k] - g[k];  // round pseudo-gradient
        m[k] = config_.beta1 * m[k] + (1.0f - config_.beta1) * delta;
        v[k] = config_.beta2 * v[k] + (1.0f - config_.beta2) * delta * delta;
        g[k] += config_.learning_rate * m[k] /
                (std::sqrt(v[k]) + config_.epsilon);
      }
    }
  }

 private:
  FedAdamConfig config_;
  StateDict m_, v_;
};

}  // namespace

AggregatorPtr make_fedavg() { return std::make_shared<FedAvg>(); }

AggregatorPtr make_fedavgm(float beta) {
  return std::make_shared<FedAvgM>(beta);
}

AggregatorPtr make_fedadam(FedAdamConfig config) {
  return std::make_shared<FedAdam>(config);
}

}  // namespace fedsz::core

#include "core/fl/aggregator.hpp"

#include <cmath>

namespace fedsz::core {

void StreamingMean::begin(const StateDict& reference) {
  if (active_)
    throw InvalidArgument("StreamingMean: previous round not finalized");
  mean_ = reference.zeros_like();
  total_ = 0.0;
  count_ = 0;
  active_ = true;
}

void StreamingMean::add(const StateDict& update, double weight) {
  if (!active_) throw InvalidArgument("StreamingMean: add before begin");
  if (!(weight >= 0.0) || !std::isfinite(weight))
    throw InvalidArgument("StreamingMean: weight must be finite and >= 0");
  ++count_;
  if (weight == 0.0) return;
  total_ += weight;
  const float c = static_cast<float>(weight / total_);
  // Entries pair positionally when the update shares the accumulator's
  // layout (one string compare each; the common case), falling back to a
  // name lookup — then fold through the contiguous Tensor kernel.
  mean_.fold_scaled(update, c);
}

StateDict StreamingMean::finalize() {
  if (!active_) throw InvalidArgument("StreamingMean: finalize before begin");
  active_ = false;
  if (count_ == 0) throw InvalidArgument("StreamingMean: no updates");
  if (total_ <= 0.0)
    throw InvalidArgument("StreamingMean: zero total weight");
  return std::move(mean_);
}

PartialAggregate StreamingMean::finalize_partial() {
  if (!active_)
    throw InvalidArgument("StreamingMean: finalize_partial before begin");
  active_ = false;
  if (count_ == 0) throw InvalidArgument("StreamingMean: no updates");
  PartialAggregate partial;
  partial.weight = total_;
  partial.count = count_;
  partial.mean = std::move(mean_);
  return partial;
}

void StreamingMean::abort() {
  mean_ = StateDict();
  total_ = 0.0;
  count_ = 0;
  active_ = false;
}

void Aggregator::begin_round(const StateDict& global) { mean_.begin(global); }

void Aggregator::accumulate(const StateDict& update, double weight) {
  mean_.add(update, weight);
}

void Aggregator::finalize(StateDict& global) {
  const StateDict mean = mean_.finalize();
  apply_mean(global, mean);
}

PartialAggregate Aggregator::finalize_partial() {
  return mean_.finalize_partial();
}

void Aggregator::merge_partial(const StateDict& mean, double weight) {
  mean_.add(mean, weight);
}

void Aggregator::abort_round() { mean_.abort(); }

void Aggregator::save_state(ByteWriter& out) const { out.put_varint(0); }

void Aggregator::load_state(ByteReader& in) {
  if (in.get_varint() != 0)
    throw CorruptStream("Aggregator: unexpected state for a stateless rule");
}

void Aggregator::aggregate(
    StateDict& global,
    const std::vector<std::pair<StateDict, std::size_t>>& updates) {
  begin_round(global);
  try {
    for (const auto& [update, samples] : updates)
      accumulate(update, static_cast<double>(samples));
    finalize(global);
  } catch (...) {
    mean_ = StreamingMean();  // abandon the round so the next one can begin
    throw;
  }
}

StateDict weighted_mean(
    const StateDict& reference,
    const std::vector<std::pair<StateDict, std::size_t>>& updates) {
  StreamingMean mean;
  mean.begin(reference);
  for (const auto& [update, samples] : updates)
    mean.add(update, static_cast<double>(samples));
  return mean.finalize();
}

namespace {

class FedAvg final : public Aggregator {
 public:
  std::string name() const override { return "fedavg"; }

 protected:
  void apply_mean(StateDict& global, const StateDict& mean) override {
    global = mean;
  }
};

class FedAvgM final : public Aggregator {
 public:
  explicit FedAvgM(float beta) : beta_(beta) {
    if (beta < 0.0f || beta >= 1.0f)
      throw InvalidArgument("FedAvgM: beta must be in [0, 1)");
  }
  std::string name() const override { return "fedavgm"; }

  void save_state(ByteWriter& out) const override {
    out.put_varint(1);
    out.put_blob(velocity_.serialize());
  }
  void load_state(ByteReader& in) override {
    if (in.get_varint() != 1)
      throw CorruptStream("FedAvgM: bad checkpoint section count");
    velocity_ = StateDict::deserialize(in.get_blob_view());
  }

 protected:
  void apply_mean(StateDict& global, const StateDict& mean) override {
    if (velocity_.empty()) velocity_ = global.zeros_like();
    // v <- beta v + (mean - global); global <- global + v
    for (std::size_t i = 0; i < velocity_.entries().size(); ++i) {
      Tensor& v = velocity_.entries_mutable()[i].second;
      const Tensor& m = mean.entries()[i].second;
      Tensor& g = global.entries_mutable()[i].second;
      for (std::size_t k = 0; k < v.numel(); ++k) {
        v[k] = beta_ * v[k] + (m[k] - g[k]);
        g[k] += v[k];
      }
    }
  }

 private:
  float beta_;
  StateDict velocity_;
};

class FedAdam final : public Aggregator {
 public:
  explicit FedAdam(FedAdamConfig config) : config_(config) {
    if (!(config.learning_rate > 0.0f))
      throw InvalidArgument("FedAdam: learning rate must be positive");
  }
  std::string name() const override { return "fedadam"; }

  void save_state(ByteWriter& out) const override {
    out.put_varint(2);
    out.put_blob(m_.serialize());
    out.put_blob(v_.serialize());
  }
  void load_state(ByteReader& in) override {
    if (in.get_varint() != 2)
      throw CorruptStream("FedAdam: bad checkpoint section count");
    m_ = StateDict::deserialize(in.get_blob_view());
    v_ = StateDict::deserialize(in.get_blob_view());
  }

 protected:
  void apply_mean(StateDict& global, const StateDict& mean) override {
    if (m_.empty()) {
      m_ = global.zeros_like();
      v_ = global.zeros_like();
    }
    for (std::size_t i = 0; i < m_.entries().size(); ++i) {
      Tensor& m = m_.entries_mutable()[i].second;
      Tensor& v = v_.entries_mutable()[i].second;
      const Tensor& avg = mean.entries()[i].second;
      Tensor& g = global.entries_mutable()[i].second;
      for (std::size_t k = 0; k < m.numel(); ++k) {
        const float delta = avg[k] - g[k];  // round pseudo-gradient
        m[k] = config_.beta1 * m[k] + (1.0f - config_.beta1) * delta;
        v[k] = config_.beta2 * v[k] + (1.0f - config_.beta2) * delta * delta;
        g[k] += config_.learning_rate * m[k] /
                (std::sqrt(v[k]) + config_.epsilon);
      }
    }
  }

 private:
  FedAdamConfig config_;
  StateDict m_, v_;
};

}  // namespace

AggregatorPtr make_fedavg() { return std::make_shared<FedAvg>(); }

AggregatorPtr make_fedavgm(float beta) {
  return std::make_shared<FedAvgM>(beta);
}

AggregatorPtr make_fedadam(FedAdamConfig config) {
  return std::make_shared<FedAdam>(config);
}

}  // namespace fedsz::core

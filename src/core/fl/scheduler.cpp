#include "core/fl/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/common.hpp"

namespace fedsz::core {

double Scheduler::staleness_scale(int dispatch_round, int server_round) const {
  (void)dispatch_round;
  (void)server_round;
  return 1.0;
}

namespace {

std::vector<std::size_t> everyone(std::size_t clients) {
  std::vector<std::size_t> all(clients);
  std::iota(all.begin(), all.end(), std::size_t{0});
  return all;
}

class SyncScheduler final : public Scheduler {
 public:
  std::string name() const override { return "sync"; }
  std::vector<std::size_t> cohort(int, std::size_t clients, Rng&) override {
    return everyone(clients);
  }
  std::size_t aggregation_goal(std::size_t cohort_size) const override {
    return cohort_size;
  }
  bool continuous() const override { return false; }
};

class SampledSyncScheduler final : public Scheduler {
 public:
  explicit SampledSyncScheduler(double fraction) : fraction_(fraction) {
    if (!(fraction > 0.0) || fraction > 1.0)
      throw InvalidArgument(
          "SampledSyncScheduler: fraction must be in (0, 1]");
  }
  std::string name() const override { return "sampled_sync"; }
  std::vector<std::size_t> cohort(int, std::size_t clients,
                                  Rng& rng) override {
    const auto take = std::min<std::size_t>(
        clients, std::max<std::size_t>(
                     1, static_cast<std::size_t>(std::ceil(
                            fraction_ * static_cast<double>(clients)))));
    // Partial Fisher-Yates: the first `take` positions end up a uniform
    // draw of distinct clients; sorted so dispatch (and thus virtual-clock
    // tie-breaking) is in client-index order.
    std::vector<std::size_t> pool = everyone(clients);
    for (std::size_t i = 0; i < take; ++i)
      std::swap(pool[i], pool[i + rng.uniform_index(clients - i)]);
    pool.resize(take);
    std::sort(pool.begin(), pool.end());
    return pool;
  }
  std::size_t aggregation_goal(std::size_t cohort_size) const override {
    return cohort_size;
  }
  bool continuous() const override { return false; }

 private:
  double fraction_;
};

class BufferedAsyncScheduler final : public Scheduler {
 public:
  explicit BufferedAsyncScheduler(BufferedAsyncConfig config)
      : config_(config) {
    if (config.buffer_size == 0)
      throw InvalidArgument(
          "BufferedAsyncScheduler: buffer_size must be >= 1");
    if (config.staleness_exponent < 0.0)
      throw InvalidArgument(
          "BufferedAsyncScheduler: staleness_exponent must be >= 0");
  }
  std::string name() const override { return "buffered_async"; }
  std::vector<std::size_t> cohort(int, std::size_t clients, Rng&) override {
    return everyone(clients);  // all clients train continuously
  }
  std::size_t aggregation_goal(std::size_t cohort_size) const override {
    // Never demand more in-flight updates than clients exist, or the pump
    // would starve.
    return std::min(config_.buffer_size, cohort_size);
  }
  bool continuous() const override { return true; }
  double staleness_scale(int dispatch_round,
                         int server_round) const override {
    const double staleness =
        static_cast<double>(std::max(0, server_round - dispatch_round));
    return 1.0 / std::pow(1.0 + staleness, config_.staleness_exponent);
  }

 private:
  BufferedAsyncConfig config_;
};

}  // namespace

SchedulerPtr make_sync_scheduler() { return std::make_shared<SyncScheduler>(); }

SchedulerPtr make_sampled_sync_scheduler(double fraction) {
  return std::make_shared<SampledSyncScheduler>(fraction);
}

SchedulerPtr make_buffered_async_scheduler(BufferedAsyncConfig config) {
  return std::make_shared<BufferedAsyncScheduler>(config);
}

}  // namespace fedsz::core

// Client population modeling: who the clients are, not just how many.
//
// Every run used to draw clients from a flat, always-available pool with
// independently-drawn links. Real edge fleets are correlated — a phone on
// LTE has both a slow uplink AND a slow CPU AND a small local dataset, and
// it disappears at night. This module assigns each client a named
// DeviceClass (compute multiplier, lognormal link distribution, dataset
// weight) and an availability model (diurnal sinusoid with per-client
// phase jitter, or flat/always modes) that the coordinator samples on the
// VIRTUAL clock at each round open to decide per-round eligibility.
//
// Spec grammar (the `population=` comm key):
//
//   population=PRESET[:OPT[;OPT]...]
//
//   PRESET := mixed | mobile | iot_fleet | uniform | custom
//   OPT    := mix=CLASS*W[+CLASS*W...]   (required for custom, else invalid)
//          |  avail=diurnal | avail=always | avail=flat:P
//          |  period=SECONDS             (diurnal period, default 86400)
//          |  jitter=F                   (per-client phase jitter in [0,1])
//          |  drop=P                     (mid-round offline probability)
//          |  seed=N                     (0 = derive from the run seed)
//
// Options use ';' separators and '+' inside mix= so a canonical spec never
// contains ',' — it embeds verbatim in the comma-separated comm-key list.
// format_population_spec(parse_population_spec(s)) is idempotent and emits
// only non-default options in a fixed order.
//
// Determinism contract: class assignment, phases, and link draws come from
// one dedicated stream seeded by `seed` (or run_seed ^ 0xDEC1A55Eull when
// 0), consumed in client-index order — independent of thread count,
// transport, and every other coordinator stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/bandwidth.hpp"
#include "util/rng.hpp"

namespace fedsz::core {

/// A named device profile. Compute, link, and data-size parameters are
/// correlated by construction: every client of a class shares the class's
/// compute multiplier and draws its link from the class's distribution.
struct DeviceClass {
  std::string name;
  /// Multiplies compute_seconds_per_sample (higher = slower device).
  double compute_multiplier = 1.0;
  /// Lognormal uplink: bandwidth = median * exp(log_sigma * N(0,1)).
  double bandwidth_median_mbps = 10.0;
  double bandwidth_log_sigma = 0.0;
  double latency_s = 0.0;
  /// Fraction of an even shard the device can hold/train on (prefix
  /// truncation of the shuffled shard, so it stays deterministic).
  double data_weight = 1.0;
  /// Diurnal availability p(t) = mean + amplitude * sin(2*pi*(t/period + phase)).
  double availability_mean = 1.0;
  double diurnal_amplitude = 0.0;
};

/// The built-in class table: phone_lte, phone_wifi, laptop, iot.
const std::vector<DeviceClass>& device_class_table();
/// Lookup by name; nullptr when unknown.
const DeviceClass* find_device_class(const std::string& name);

enum class AvailabilityMode : std::uint8_t {
  kDiurnal = 0,  ///< sinusoid on the virtual clock, per-client phase
  kFlat = 1,     ///< constant Bernoulli(p) per round
  kAlways = 2,   ///< everyone eligible every round (draws still consumed)
};

std::string availability_mode_name(AvailabilityMode mode);

struct DeviceClassShare {
  std::string name;
  double weight = 1.0;
};

struct PopulationConfig {
  /// mixed | mobile | iot_fleet | uniform | custom; empty = no population.
  std::string preset;
  /// Class mix for preset "custom" (must be empty otherwise).
  std::vector<DeviceClassShare> mix;
  AvailabilityMode availability = AvailabilityMode::kDiurnal;
  /// Bernoulli eligibility probability under kFlat; must be in (0, 1].
  double flat_availability = 1.0;
  /// Diurnal period on the virtual clock.
  double period_seconds = 86400.0;
  /// Per-client phase offset drawn uniformly from [0, phase_jitter).
  double phase_jitter = 0.25;
  /// Probability an eligible cohort member goes offline mid-round
  /// (surfaced through the existing dropout/DeliveryStatus machinery).
  double dropout_rate = 0.0;
  /// Assignment/eligibility seed; 0 derives from the run seed.
  std::uint64_t seed = 0;

  bool empty() const { return preset.empty(); }
  /// Throws InvalidArgument on unknown presets/classes, empty custom
  /// mixes, non-positive weights, or degenerate availability (e.g.
  /// flat:0, period <= 0). A default-constructed (empty) config passes.
  void validate() const;
};

/// Parse `text` (grammar above). Throws InvalidArgument with the offending
/// key on malformed input. Empty text -> empty config.
PopulationConfig parse_population_spec(const std::string& text);
/// Canonical form: format(parse(s)) == format(parse(format(parse(s)))).
std::string format_population_spec(const PopulationConfig& config);

/// The preset's class mix resolved to concrete (class, weight) shares.
std::vector<DeviceClassShare> resolve_population_mix(
    const PopulationConfig& config);

/// Seeded per-client materialization of a PopulationConfig: class
/// assignment, diurnal phase, and one correlated NetworkProfile per client.
class ClientPopulation {
 public:
  /// Validates `config` (must be non-empty) and draws every per-client
  /// attribute up front, in client-index order, from the dedicated stream.
  ClientPopulation(const PopulationConfig& config, std::size_t clients,
                   std::uint64_t run_seed);

  std::size_t size() const { return class_index_.size(); }
  const PopulationConfig& config() const { return config_; }

  const DeviceClass& device_class(std::size_t client) const;
  const std::string& class_name(std::size_t client) const;
  double compute_multiplier(std::size_t client) const;
  double data_weight(std::size_t client) const;

  /// Per-client correlated links, ready for HeterogeneousNetwork::from_profiles.
  const std::vector<net::NetworkProfile>& link_profiles() const {
    return link_profiles_;
  }

  /// Availability probability for `client` at virtual time
  /// `virtual_seconds`, in [0, 1]. Pure: no RNG consumed.
  double availability(std::size_t client, double virtual_seconds) const;

 private:
  PopulationConfig config_;
  std::vector<std::size_t> class_index_;  ///< into device_class_table()
  std::vector<double> phase_;             ///< diurnal phase offsets
  std::vector<net::NetworkProfile> link_profiles_;
};

}  // namespace fedsz::core

// Downlink (server -> client) broadcast compression. FedSZ's Algorithm 1
// compresses only the client->server uplink; the global-model broadcast —
// half of every round's traffic — was free and lossless in the runtime, so
// the Eqn (1) compress-or-not decision was blind to it. This module routes
// the broadcast through the same UpdateCodec / policy / v3-container path
// as the uplink:
//
//   DownlinkMode::kFull   the coordinator encodes the global model ONCE per
//                         round (on the thread pool) and charges the same
//                         payload against each client's own link — the hot
//                         path never serializes per client.
//   DownlinkMode::kDelta  per-client session state: the server tracks the
//                         last model each client acknowledged (that is, the
//                         RECONSTRUCTION the client decoded, so both ends
//                         agree bit for bit) and encodes only the delta
//                         against it. First contact falls back to a full
//                         broadcast.
//
// Thread-safety contract: per-client calls (encode_for_client / receive)
// for DIFFERENT clients may run concurrently on the pool; calls for the
// same client must be sequential, which the coordinator guarantees (a
// client has at most one broadcast in flight).
#pragma once

#include <string>
#include <vector>

#include "core/update_codec.hpp"

namespace fedsz::core {

enum class DownlinkMode : std::uint8_t { kFull = 0, kDelta = 1 };

std::string downlink_mode_name(DownlinkMode mode);

struct DownlinkConfig {
  DownlinkMode mode = DownlinkMode::kFull;
  /// Codec the broadcast rides (identity models an *accounted* lossless
  /// broadcast: full bytes charged to every link).
  UpdateCodecPtr codec;
};

/// One encoded broadcast: the on-wire payload plus its encode-side stats.
struct BroadcastPayload {
  Bytes payload;
  CompressionStats stats;
};

class DownlinkChannel {
 public:
  /// Throws InvalidArgument on a null codec or zero clients.
  DownlinkChannel(DownlinkConfig config, std::size_t clients);

  DownlinkMode mode() const { return config_.mode; }
  const UpdateCodec& codec() const { return *config_.codec; }

  /// Encode `global` once for a whole cohort (kFull). Stateless, so it may
  /// also serve per-client redispatches under continuous schedulers.
  BroadcastPayload encode_broadcast(const StateDict& global, int round) const;

  /// Decode a kFull broadcast into the model clients train on. Stateless:
  /// every client reconstructs the same model, so the coordinator decodes
  /// once and shares the result across the cohort.
  StateDict decode_broadcast(ByteSpan payload,
                             CompressionStats* stats = nullptr) const;

  /// kDelta: encode `global` minus this client's acknowledged model (full
  /// model on first contact).
  BroadcastPayload encode_for_client(std::size_t client,
                                     const StateDict& global, int round) const;

  /// kDelta client side: decode the payload, rebuild the model as
  /// acknowledged + delta, and advance this client's session to the
  /// reconstruction (the server-side cache advances identically, so the
  /// next delta is encoded against exactly what the client holds).
  StateDict receive(std::size_t client, ByteSpan payload,
                    CompressionStats* stats = nullptr);

  /// The model this client last acknowledged (empty before first contact).
  const StateDict& acknowledged(std::size_t client) const;

  /// All per-client acknowledged models, in client order (checkpoint save).
  const std::vector<StateDict>& sessions() const { return sessions_; }
  /// Install checkpointed sessions; must match the construction-time client
  /// count or InvalidArgument is thrown.
  void restore_sessions(std::vector<StateDict> sessions);

 private:
  DownlinkConfig config_;
  std::vector<StateDict> sessions_;  // kDelta per-client acknowledged model
};

}  // namespace fedsz::core

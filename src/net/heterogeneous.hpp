// Per-client network assignment for heterogeneous federation runs. The
// paper's Section VI-C sweeps a single simulated bandwidth shared by every
// client; real edge fleets are nothing like that, and the Eqn (1)
// compress-or-not decision only becomes interesting when each client faces
// its own link. This module draws one SimulatedNetwork per client from a
// named distribution:
//
//   uniform_edge   bandwidth ~ U[min, max] Mbps — a constrained edge fleet
//   lognormal_wan  ln(bandwidth) ~ N(ln median, sigma) — WAN-style heavy tail
//   two_tier       an exact fraction of fast datacenter links, rest edge
//
// Draws are fully determined by the config seed, so a heterogeneous run is
// reproducible end to end.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/bandwidth.hpp"

namespace fedsz::net {

enum class LinkDistribution { kUniformEdge, kLogNormalWan, kTwoTier };

std::string link_distribution_name(LinkDistribution distribution);
LinkDistribution link_distribution_from_name(const std::string& name);

struct HeterogeneousNetworkConfig {
  LinkDistribution distribution = LinkDistribution::kUniformEdge;
  // uniform_edge
  double edge_min_mbps = 5.0;
  double edge_max_mbps = 15.0;
  // lognormal_wan
  double wan_median_mbps = 50.0;
  double wan_log_sigma = 1.0;
  // two_tier
  double two_tier_fast_fraction = 0.1;
  double two_tier_fast_mbps = 1000.0;
  double two_tier_slow_mbps = 10.0;
  // shared
  double latency_s = 0.0;
  std::uint64_t seed = 0x0b5e55edull;
};

class HeterogeneousNetwork {
 public:
  /// Draw one link per client from `config.distribution`.
  HeterogeneousNetwork(const HeterogeneousNetworkConfig& config,
                       std::size_t clients);

  /// Every client on the same link — the paper's (and the pre-event-runtime
  /// coordinator's) homogeneous setting.
  static HeterogeneousNetwork homogeneous(NetworkProfile profile,
                                          std::size_t clients);

  /// One link per explicitly-given profile — how a ClientPopulation's
  /// device-class-correlated draws become simulated links (the population
  /// owns the distribution; this class just materializes it).
  static HeterogeneousNetwork from_profiles(
      const std::vector<NetworkProfile>& profiles);

  std::size_t size() const { return links_.size(); }
  const SimulatedNetwork& link(std::size_t client) const;

  double min_bandwidth_mbps() const;
  double max_bandwidth_mbps() const;
  double mean_bandwidth_mbps() const;

 private:
  HeterogeneousNetwork() = default;
  std::vector<SimulatedNetwork> links_;
};

/// One link per node: drawn from `config` when set, else `fallback` shared
/// by every node. The single construction path for every simulated link
/// tier — the coordinator's client uplinks and the topology's per-edge
/// backhaul (e.g. two_tier: a fraction of edges on datacenter fiber, the
/// rest on constrained metro links) both route through it.
HeterogeneousNetwork build_links(
    const std::optional<HeterogeneousNetworkConfig>& config,
    NetworkProfile fallback, std::size_t nodes);

}  // namespace fedsz::net

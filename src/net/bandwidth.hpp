// Bandwidth/latency model for client-server transfers. The paper evaluates
// communication on *simulated* bandwidth (Section VI-C: measured MPI
// transfers padded with sleeps to a target bandwidth); this module computes
// the same quantity analytically — transfer time = latency + bits/bandwidth —
// and implements the Eqn (1) decision rule for when compression is
// worthwhile.
#pragma once

#include <cstddef>
#include <limits>

namespace fedsz::net {

struct NetworkProfile {
  double bandwidth_mbps = 10.0;  // megabits per second (paper's edge default)
  double latency_s = 0.0;
};

class SimulatedNetwork {
 public:
  explicit SimulatedNetwork(NetworkProfile profile);

  /// Seconds to move `bytes` across the link.
  double transfer_seconds(std::size_t bytes) const;

  const NetworkProfile& profile() const { return profile_; }

 private:
  NetworkProfile profile_;
};

/// Eqn (1): total time with compression (t_C + t_D + S'/B_N) vs without
/// (S/B_N). `worthwhile` is the paper's decision criterion.
struct CompressionDecision {
  double compressed_seconds = 0.0;
  double uncompressed_seconds = 0.0;
  bool worthwhile = false;
  /// uncompressed / compressed. A zero-cost compressed path is infinitely
  /// faster, not 0x faster.
  double speedup() const {
    return compressed_seconds > 0.0
               ? uncompressed_seconds / compressed_seconds
               : std::numeric_limits<double>::infinity();
  }
};

CompressionDecision evaluate_compression(std::size_t raw_bytes,
                                         std::size_t compressed_bytes,
                                         double compress_seconds,
                                         double decompress_seconds,
                                         const SimulatedNetwork& network);

}  // namespace fedsz::net

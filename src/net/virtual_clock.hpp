// Discrete-event virtual clock for the federation runtime. Simulated
// durations (client compute, link transfers) are expressed as events on a
// priority queue keyed by virtual time, so *arrival order* — not loop
// order — sequences the simulation. Ties are broken by insertion sequence,
// which makes every run deterministic: two clients finishing at the same
// virtual instant are processed in dispatch order.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace fedsz::net {

class EventQueue {
 public:
  using Event = std::function<void()>;

  /// Current virtual time in seconds. Starts at 0 and only moves forward.
  double now() const { return now_; }

  std::size_t pending() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  /// Schedule `event` at absolute virtual time `time` (>= now, finite).
  void schedule_at(double time, Event event);

  /// Schedule `event` `delay` seconds after the current virtual time.
  void schedule_after(double delay, Event event);

  /// Pop the earliest event ((time, insertion seq) order), advance the
  /// clock to its timestamp and run it. The event may schedule further
  /// events. Returns false when the queue is empty.
  bool run_next();

  /// Drop all pending events without running them.
  void clear() { heap_.clear(); }

  /// Insertion sequence of the next scheduled event (part of the tie-break
  /// key, so it belongs in a checkpoint alongside now()).
  std::uint64_t next_seq() const { return next_seq_; }

  /// Jump the clock to a checkpointed (time, sequence) pair. Only legal on
  /// an empty queue — pending events were scheduled against the old clock
  /// and would fire at nonsensical times.
  void restore_clock(double now, std::uint64_t next_seq);

 private:
  struct Item {
    double time = 0.0;
    std::uint64_t seq = 0;
    Event event;
  };
  // Min-heap via std::*_heap with a "greater" comparison.
  static bool later(const Item& a, const Item& b) {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }

  std::vector<Item> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace fedsz::net

// Versioned, length-prefixed, CRC-guarded wire frames — the unit of
// exchange between a federation root and its remote edge workers. Every
// frame is
//
//   u32 magic ("FSW1")   u8 version   u8 type   u16 flags (reserved-zero)
//   u32 payload length   u32 crc32(header prefix + payload)   payload...
//
// with the same hardened validation posture as the bitstream containers:
// corrupt magic/version/type, nonzero reserved flags, a declared length
// above the decoder's cap (the decompression-bomb guard), or a CRC
// mismatch all throw CorruptStream before a single payload byte is
// interpreted. The CRC covers the 12 header bytes before it as well as
// the payload, so a bit flip anywhere in a frame — even a type byte
// flipped to another valid type — fails the checksum. Payloads are opaque here —
// core/fl/federation.hpp defines the typed bodies (run manifests, round
// opens, serialized EncodedPartials, v3 containers for model broadcasts).
//
// FrameDecoder is incremental: feed() it whatever the transport produced
// and poll next(); partial frames simply wait for more bytes, so it sits
// directly on a TCP read loop without any framing assumptions about read
// boundaries.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/bytebuffer.hpp"
#include "util/common.hpp"

namespace fedsz::net {

enum class FrameType : std::uint8_t {
  kHello = 1,      // handshake: run manifest (root->edge), ack (edge->root)
  kRoundOpen = 2,  // root->edge: round index, virtual open time, cohort
  kUpdate = 3,     // reserved: a single client update routed upstream
  kPartial = 4,    // edge->root: the round's folded, re-encoded partial
  kBroadcast = 5,  // root->edge: the serialized global model
  kAck = 6,        // root->edge: partial merged
  kHeartbeat = 7,  // edge->root: liveness (payload: virtual round index)
  kBye = 8,        // either side: orderly shutdown
};

std::string frame_type_name(FrameType type);

inline constexpr std::uint32_t kWireMagic = 0x31575346u;  // "FSW1" LE
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderBytes = 16;
/// Default decoder payload cap. Generous (a paper-scale AlexNet broadcast
/// is ~200 MB raw) but bounded, so a corrupt or hostile length prefix can
/// never drive an allocation by itself.
inline constexpr std::size_t kMaxFramePayload = std::size_t{512} << 20;

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  Bytes payload;
};

/// Append one framed payload to `out` (header + CRC + payload).
void encode_frame_into(FrameType type, ByteSpan payload, ByteWriter& out);
Bytes encode_frame(FrameType type, ByteSpan payload);

/// Incremental frame parser over an untrusted byte stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxFramePayload);

  /// Append transport bytes to the internal buffer.
  void feed(ByteSpan data);

  /// The next complete frame, or nullopt when the buffer holds only a
  /// partial one. Throws CorruptStream on bad magic/version/type, a length
  /// above the cap, or a payload CRC mismatch; the decoder is then
  /// poisoned (every later call rethrows) since a byte stream without
  /// frame sync cannot be resynchronized safely.
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buffer_.size() - consumed_; }
  /// True when a frame header has been seen but its payload is incomplete
  /// (an EOF now means a truncated frame, not a clean close).
  bool mid_frame() const;

 private:
  std::size_t max_payload_;
  Bytes buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already parsed
  bool poisoned_ = false;
};

}  // namespace fedsz::net

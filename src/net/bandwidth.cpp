#include "net/bandwidth.hpp"

#include "util/common.hpp"

namespace fedsz::net {

SimulatedNetwork::SimulatedNetwork(NetworkProfile profile)
    : profile_(profile) {
  if (!(profile_.bandwidth_mbps > 0.0))
    throw InvalidArgument("SimulatedNetwork: bandwidth must be positive");
  if (profile_.latency_s < 0.0)
    throw InvalidArgument("SimulatedNetwork: latency must be non-negative");
}

double SimulatedNetwork::transfer_seconds(std::size_t bytes) const {
  const double bits = static_cast<double>(bytes) * 8.0;
  return profile_.latency_s + bits / (profile_.bandwidth_mbps * 1e6);
}

CompressionDecision evaluate_compression(std::size_t raw_bytes,
                                         std::size_t compressed_bytes,
                                         double compress_seconds,
                                         double decompress_seconds,
                                         const SimulatedNetwork& network) {
  CompressionDecision decision;
  decision.uncompressed_seconds = network.transfer_seconds(raw_bytes);
  decision.compressed_seconds = compress_seconds + decompress_seconds +
                                network.transfer_seconds(compressed_bytes);
  decision.worthwhile =
      decision.compressed_seconds < decision.uncompressed_seconds;
  return decision;
}

}  // namespace fedsz::net

#include "net/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <thread>

namespace fedsz::net {

namespace {

[[noreturn]] void transport_fail(const std::string& what) {
  throw TransportError("transport: " + what + ": " + std::strerror(errno));
}

// ---- in-memory loopback ----

/// One direction of the loopback pipe: a bounded-unbounded byte queue.
/// (Unbounded is fine here: the protocol is request/response with one
/// partial in flight per edge, so queues stay a few frames deep.)
struct LoopbackQueue {
  std::mutex mutex;
  std::condition_variable readable;
  std::deque<std::uint8_t> bytes;
  bool closed = false;

  void write(ByteSpan data) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (closed) throw TransportError("transport: loopback peer closed");
      bytes.insert(bytes.end(), data.begin(), data.end());
    }
    readable.notify_all();
  }

  std::size_t read(std::uint8_t* out, std::size_t capacity) {
    std::unique_lock<std::mutex> lock(mutex);
    readable.wait(lock, [this] { return !bytes.empty() || closed; });
    if (bytes.empty()) return 0;  // closed and drained: EOF
    const std::size_t take = std::min(capacity, bytes.size());
    for (std::size_t i = 0; i < take; ++i) {
      out[i] = bytes.front();
      bytes.pop_front();
    }
    return take;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      closed = true;
    }
    readable.notify_all();
  }
};

class LoopbackStream final : public Stream {
 public:
  LoopbackStream(std::shared_ptr<LoopbackQueue> in,
                 std::shared_ptr<LoopbackQueue> out)
      : in_(std::move(in)), out_(std::move(out)) {}
  ~LoopbackStream() override { close(); }

  void write_all(ByteSpan data) override { out_->write(data); }
  std::size_t read_some(std::uint8_t* out, std::size_t capacity) override {
    return in_->read(out, capacity);
  }
  void close() override {
    in_->close();
    out_->close();
  }

 private:
  std::shared_ptr<LoopbackQueue> in_;
  std::shared_ptr<LoopbackQueue> out_;
};

// ---- POSIX TCP ----

class TcpStream final : public Stream {
 public:
  explicit TcpStream(int fd) : fd_(fd) {
    // One frame per send() and latency-sensitive heartbeats: disable
    // Nagle so small frames leave immediately.
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~TcpStream() override { close(); }

  void write_all(ByteSpan data) override {
    const std::uint8_t* p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
      // MSG_NOSIGNAL: a peer reset surfaces as EPIPE, not a process-fatal
      // SIGPIPE from inside the library.
      const ssize_t sent = ::send(fd_, p, left, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EINTR) continue;
        transport_fail("send failed");
      }
      p += sent;
      left -= static_cast<std::size_t>(sent);
    }
  }

  std::size_t read_some(std::uint8_t* out, std::size_t capacity) override {
    while (true) {
      const ssize_t got = ::recv(fd_, out, capacity, 0);
      if (got < 0) {
        if (errno == EINTR) continue;
        transport_fail("recv failed");
      }
      return static_cast<std::size_t>(got);
    }
  }

  void close() override {
    int fd = fd_.exchange(-1);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }

 private:
  std::atomic<int> fd_;
};

}  // namespace

std::pair<StreamPtr, StreamPtr> make_loopback_pair() {
  auto a_to_b = std::make_shared<LoopbackQueue>();
  auto b_to_a = std::make_shared<LoopbackQueue>();
  return {std::make_shared<LoopbackStream>(b_to_a, a_to_b),
          std::make_shared<LoopbackStream>(a_to_b, b_to_a)};
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) transport_fail("socket failed");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string what =
        "bind to 127.0.0.1:" + std::to_string(port) + " failed";
    ::close(fd_);
    fd_ = -1;
    transport_fail(what);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd_);
    fd_ = -1;
    transport_fail("getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd_, 64) != 0) {
    ::close(fd_);
    fd_ = -1;
    transport_fail("listen failed");
  }
}

TcpListener::~TcpListener() { close(); }

StreamPtr TcpListener::accept() {
  if (fd_ < 0) throw TransportError("transport: listener closed");
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      transport_fail("accept failed");
    }
    return std::make_shared<TcpStream>(fd);
  }
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StreamPtr tcp_connect(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw TransportError("transport: bad IPv4 address '" + host + "'");
  // An edge worker may win the race against the root's listen(); retry
  // refusals for a few seconds before giving up.
  constexpr int kAttempts = 50;
  for (int attempt = 0;; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) transport_fail("socket failed");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      return std::make_shared<TcpStream>(fd);
    const int saved = errno;
    ::close(fd);
    if ((saved != ECONNREFUSED && saved != ETIMEDOUT) ||
        attempt + 1 >= kAttempts) {
      errno = saved;
      transport_fail("connect to " + host + ":" + std::to_string(port) +
                     " failed");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

FrameChannel::FrameChannel(StreamPtr stream, std::size_t max_payload)
    : stream_(std::move(stream)), decoder_(max_payload) {
  if (!stream_) throw InvalidArgument("FrameChannel: null stream");
}

void FrameChannel::send(FrameType type, ByteSpan payload) {
  const Bytes frame = encode_frame(type, payload);
  std::lock_guard<std::mutex> lock(send_mutex_);
  stream_->write_all({frame.data(), frame.size()});
}

std::optional<Frame> FrameChannel::recv() {
  while (true) {
    if (std::optional<Frame> frame = decoder_.next()) return frame;
    std::uint8_t buffer[1 << 16];
    const std::size_t got = stream_->read_some(buffer, sizeof(buffer));
    if (got == 0) {
      if (decoder_.mid_frame())
        throw CorruptStream("wire: stream ended mid-frame");
      return std::nullopt;
    }
    decoder_.feed({buffer, got});
  }
}

}  // namespace fedsz::net

#include "net/virtual_clock.hpp"

#include <algorithm>
#include <cmath>

#include "util/common.hpp"

namespace fedsz::net {

void EventQueue::schedule_at(double time, Event event) {
  if (!std::isfinite(time))
    throw InvalidArgument("EventQueue: event time must be finite");
  if (time < now_)
    throw InvalidArgument("EventQueue: cannot schedule in the past");
  if (!event) throw InvalidArgument("EventQueue: null event");
  heap_.push_back({time, next_seq_++, std::move(event)});
  std::push_heap(heap_.begin(), heap_.end(), later);
}

void EventQueue::schedule_after(double delay, Event event) {
  if (!std::isfinite(delay) || delay < 0.0)
    throw InvalidArgument("EventQueue: delay must be finite and >= 0");
  schedule_at(now_ + delay, std::move(event));
}

void EventQueue::restore_clock(double now, std::uint64_t next_seq) {
  if (!heap_.empty())
    throw InvalidArgument("EventQueue: restore_clock with pending events");
  if (!std::isfinite(now) || now < 0.0)
    throw InvalidArgument("EventQueue: restored time must be finite and >= 0");
  now_ = now;
  next_seq_ = next_seq;
}

bool EventQueue::run_next() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Item item = std::move(heap_.back());
  heap_.pop_back();
  now_ = item.time;
  item.event();
  return true;
}

}  // namespace fedsz::net

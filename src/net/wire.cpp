#include "net/wire.hpp"

#include <cstring>

#include "util/crc32.hpp"

namespace fedsz::net {

namespace {

bool known_frame_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(FrameType::kHello) &&
         raw <= static_cast<std::uint8_t>(FrameType::kBye);
}

[[noreturn]] void corrupt(const std::string& what) { throw CorruptStream("wire: " + what); }

std::uint32_t read_u32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

std::string frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kRoundOpen: return "ROUND_OPEN";
    case FrameType::kUpdate: return "UPDATE";
    case FrameType::kPartial: return "PARTIAL";
    case FrameType::kBroadcast: return "BROADCAST";
    case FrameType::kAck: return "ACK";
    case FrameType::kHeartbeat: return "HEARTBEAT";
    case FrameType::kBye: return "BYE";
  }
  return "UNKNOWN";
}

void encode_frame_into(FrameType type, ByteSpan payload, ByteWriter& out) {
  if (payload.size() > kMaxFramePayload)
    throw InvalidArgument("wire: frame payload exceeds the protocol cap");
  // The CRC covers the header prefix (magic through length) AND the
  // payload: a bit flip anywhere in the frame — including a type byte
  // flipped to another *valid* type — fails the checksum instead of
  // decoding as a plausible frame.
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  const std::uint8_t head[12] = {
      static_cast<std::uint8_t>(kWireMagic & 0xFF),
      static_cast<std::uint8_t>((kWireMagic >> 8) & 0xFF),
      static_cast<std::uint8_t>((kWireMagic >> 16) & 0xFF),
      static_cast<std::uint8_t>((kWireMagic >> 24) & 0xFF),
      kWireVersion,
      static_cast<std::uint8_t>(type),
      0, 0,  // flags, reserved-zero (the decoder rejects anything else)
      static_cast<std::uint8_t>(length & 0xFF),
      static_cast<std::uint8_t>((length >> 8) & 0xFF),
      static_cast<std::uint8_t>((length >> 16) & 0xFF),
      static_cast<std::uint8_t>((length >> 24) & 0xFF),
  };
  const std::uint32_t crc =
      util::crc32_update(util::crc32({head, sizeof head}), payload);
  out.reserve(out.size() + kWireHeaderBytes + payload.size());
  out.put_bytes({head, sizeof head});
  out.put_u32(crc);
  out.put_bytes(payload);
}

Bytes encode_frame(FrameType type, ByteSpan payload) {
  ByteWriter out;
  encode_frame_into(type, payload, out);
  return out.finish();
}

FrameDecoder::FrameDecoder(std::size_t max_payload) : max_payload_(max_payload) {}

void FrameDecoder::feed(ByteSpan data) {
  // Drop the already-parsed prefix before growing, so a long session never
  // accumulates dead bytes.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

bool FrameDecoder::mid_frame() const { return !poisoned_ && buffered() > 0; }

std::optional<Frame> FrameDecoder::next() {
  if (poisoned_) corrupt("decoder poisoned by an earlier framing error");
  if (buffered() < kWireHeaderBytes) return std::nullopt;

  const std::uint8_t* head = buffer_.data() + consumed_;
  const std::uint32_t magic = read_u32_le(head);
  const std::uint8_t version = head[4];
  const std::uint8_t raw_type = head[5];
  const std::uint16_t flags = static_cast<std::uint16_t>(
      head[6] | static_cast<std::uint16_t>(head[7]) << 8);
  const std::uint32_t length = read_u32_le(head + 8);
  const std::uint32_t crc = read_u32_le(head + 12);

  // Validate the header before waiting on payload bytes: a corrupt length
  // must fail here, not stall the stream (or reserve gigabytes).
  if (magic != kWireMagic) {
    poisoned_ = true;
    corrupt("bad frame magic");
  }
  if (version != kWireVersion) {
    poisoned_ = true;
    corrupt("unsupported frame version " + std::to_string(version));
  }
  if (!known_frame_type(raw_type)) {
    poisoned_ = true;
    corrupt("unknown frame type " + std::to_string(raw_type));
  }
  if (flags != 0) {
    // Reserved-zero in version 1: a set bit means a future (incompatible)
    // writer or corruption, either way not a frame this decoder can trust.
    poisoned_ = true;
    corrupt("nonzero reserved flags " + std::to_string(flags));
  }
  if (length > max_payload_) {
    poisoned_ = true;
    corrupt("declared payload length " + std::to_string(length) +
            " exceeds cap " + std::to_string(max_payload_));
  }

  if (buffered() < kWireHeaderBytes + length) return std::nullopt;

  const std::uint8_t* body = head + kWireHeaderBytes;
  const ByteSpan payload{body, length};
  if (util::crc32_update(util::crc32({head, 12}), payload) != crc) {
    poisoned_ = true;
    corrupt("frame CRC mismatch in " + frame_type_name(static_cast<FrameType>(raw_type)) +
            " frame");
  }

  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  frame.payload.assign(payload.begin(), payload.end());
  consumed_ += kWireHeaderBytes + length;
  return frame;
}

}  // namespace fedsz::net

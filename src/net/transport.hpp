// Byte-stream transports for the federation wire protocol. Two
// implementations behind one Stream interface:
//
//   make_loopback_pair()  an in-memory, mutex+condvar byte pipe — the
//                         deterministic test transport (no sockets, no
//                         ports, works under every sanitizer).
//   TcpListener /         POSIX TCP. The listener binds 127.0.0.1 (port 0
//   tcp_connect()         = kernel-assigned, read back via port()) and
//                         accept()s one Stream per edge worker process.
//
// FrameChannel marries a Stream to the wire format: send() frames and
// writes atomically under a mutex (the heartbeat thread and the round
// loop share the channel), recv() pumps the FrameDecoder until a full
// frame, a clean EOF (nullopt), or a framing error (CorruptStream —
// including EOF mid-frame, which is a truncation, not a close).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "net/wire.hpp"
#include "util/common.hpp"

namespace fedsz::net {

/// Transport-layer failure (connect refused, peer reset, short write...).
/// Distinct from CorruptStream: the bytes were fine, the pipe was not.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what)
      : std::runtime_error(what) {}
};

/// A reliable, ordered byte stream. Implementations must allow one reader
/// and one writer thread concurrently; neither call is poll-based.
class Stream {
 public:
  virtual ~Stream() = default;
  /// Write all of `data` (blocking). Throws TransportError on failure.
  virtual void write_all(ByteSpan data) = 0;
  /// Read at least 1 and at most `capacity` bytes into `out` (blocking).
  /// Returns 0 on end-of-stream (peer closed). Throws TransportError.
  virtual std::size_t read_some(std::uint8_t* out, std::size_t capacity) = 0;
  /// Close both directions; unblocks a peer blocked in read_some.
  virtual void close() = 0;
};

using StreamPtr = std::shared_ptr<Stream>;

/// An in-memory full-duplex pipe: bytes written to `first` are read from
/// `second` and vice versa. Closing either end EOFs the other.
std::pair<StreamPtr, StreamPtr> make_loopback_pair();

/// One listening TCP socket on 127.0.0.1. Port 0 asks the kernel for a
/// free port — read the real one back with port() before spawning workers.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }
  /// Block until one connection arrives. Throws TransportError.
  StreamPtr accept();
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connect to `host`:`port` (blocking). Retries briefly on refusal so a
/// worker can race the root's listen(); throws TransportError after that.
StreamPtr tcp_connect(const std::string& host, std::uint16_t port);

/// A framed message channel over a Stream: the wire protocol's sender and
/// receiver sides. send() is thread-safe (one frame at a time hits the
/// stream); recv() must stay single-threaded.
class FrameChannel {
 public:
  explicit FrameChannel(StreamPtr stream,
                        std::size_t max_payload = kMaxFramePayload);

  void send(FrameType type, ByteSpan payload);
  /// The next frame, nullopt on a clean EOF between frames. EOF mid-frame
  /// or any framing/CRC violation throws CorruptStream.
  std::optional<Frame> recv();
  void close() { stream_->close(); }

 private:
  StreamPtr stream_;
  FrameDecoder decoder_;
  std::mutex send_mutex_;
};

}  // namespace fedsz::net

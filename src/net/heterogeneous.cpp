#include "net/heterogeneous.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/common.hpp"
#include "util/rng.hpp"

namespace fedsz::net {

namespace {

// Keep drawn bandwidths physical: the log-normal tail can otherwise produce
// links so slow a single update takes simulated years.
constexpr double kMinDrawMbps = 0.05;
constexpr double kMaxDrawMbps = 1e6;

double clamp_mbps(double mbps) {
  return std::min(kMaxDrawMbps, std::max(kMinDrawMbps, mbps));
}

void validate(const HeterogeneousNetworkConfig& config) {
  if (config.latency_s < 0.0)
    throw InvalidArgument("HeterogeneousNetwork: latency must be >= 0");
  switch (config.distribution) {
    case LinkDistribution::kUniformEdge:
      if (!(config.edge_min_mbps > 0.0) ||
          config.edge_max_mbps < config.edge_min_mbps)
        throw InvalidArgument(
            "HeterogeneousNetwork: need 0 < edge_min_mbps <= edge_max_mbps");
      break;
    case LinkDistribution::kLogNormalWan:
      if (!(config.wan_median_mbps > 0.0) || config.wan_log_sigma < 0.0)
        throw InvalidArgument(
            "HeterogeneousNetwork: need wan_median_mbps > 0 and "
            "wan_log_sigma >= 0");
      break;
    case LinkDistribution::kTwoTier:
      if (!(config.two_tier_fast_mbps > 0.0) ||
          !(config.two_tier_slow_mbps > 0.0) ||
          config.two_tier_fast_fraction < 0.0 ||
          config.two_tier_fast_fraction > 1.0)
        throw InvalidArgument(
            "HeterogeneousNetwork: need positive tier bandwidths and "
            "fast_fraction in [0, 1]");
      break;
  }
}

}  // namespace

std::string link_distribution_name(LinkDistribution distribution) {
  switch (distribution) {
    case LinkDistribution::kUniformEdge:
      return "uniform_edge";
    case LinkDistribution::kLogNormalWan:
      return "lognormal_wan";
    case LinkDistribution::kTwoTier:
      return "two_tier";
  }
  throw InvalidArgument("link_distribution_name: unknown distribution");
}

LinkDistribution link_distribution_from_name(const std::string& name) {
  if (name == "uniform_edge") return LinkDistribution::kUniformEdge;
  if (name == "lognormal_wan") return LinkDistribution::kLogNormalWan;
  if (name == "two_tier") return LinkDistribution::kTwoTier;
  throw InvalidArgument(
      "link_distribution_from_name: unknown distribution '" + name +
      "' (expected uniform_edge, lognormal_wan or two_tier)");
}

HeterogeneousNetwork::HeterogeneousNetwork(
    const HeterogeneousNetworkConfig& config, std::size_t clients) {
  validate(config);
  if (clients == 0)
    throw InvalidArgument("HeterogeneousNetwork: need at least one client");
  Rng rng(config.seed);
  links_.reserve(clients);
  switch (config.distribution) {
    case LinkDistribution::kUniformEdge:
      for (std::size_t i = 0; i < clients; ++i)
        links_.emplace_back(NetworkProfile{
            clamp_mbps(
                rng.uniform(config.edge_min_mbps, config.edge_max_mbps)),
            config.latency_s});
      break;
    case LinkDistribution::kLogNormalWan:
      for (std::size_t i = 0; i < clients; ++i)
        links_.emplace_back(NetworkProfile{
            clamp_mbps(config.wan_median_mbps *
                       std::exp(config.wan_log_sigma * rng.normal())),
            config.latency_s});
      break;
    case LinkDistribution::kTwoTier: {
      // Exact tier sizes (not Bernoulli draws): shuffle client indices and
      // promote the first round(fraction * clients) to the fast tier, so a
      // 10-client 30% config always has exactly 3 datacenter links.
      std::vector<std::size_t> order(clients);
      std::iota(order.begin(), order.end(), std::size_t{0});
      for (std::size_t i = clients - 1; i > 0; --i)
        std::swap(order[i], order[rng.uniform_index(i + 1)]);
      const auto fast = static_cast<std::size_t>(
          std::llround(config.two_tier_fast_fraction *
                       static_cast<double>(clients)));
      std::vector<bool> is_fast(clients, false);
      for (std::size_t i = 0; i < std::min(fast, clients); ++i)
        is_fast[order[i]] = true;
      for (std::size_t i = 0; i < clients; ++i)
        links_.emplace_back(NetworkProfile{
            is_fast[i] ? config.two_tier_fast_mbps : config.two_tier_slow_mbps,
            config.latency_s});
      break;
    }
  }
}

HeterogeneousNetwork HeterogeneousNetwork::homogeneous(NetworkProfile profile,
                                                       std::size_t clients) {
  if (clients == 0)
    throw InvalidArgument("HeterogeneousNetwork: need at least one client");
  HeterogeneousNetwork network;
  network.links_.assign(clients, SimulatedNetwork(profile));
  return network;
}

HeterogeneousNetwork HeterogeneousNetwork::from_profiles(
    const std::vector<NetworkProfile>& profiles) {
  if (profiles.empty())
    throw InvalidArgument("HeterogeneousNetwork: need at least one profile");
  HeterogeneousNetwork network;
  network.links_.reserve(profiles.size());
  for (const NetworkProfile& profile : profiles)
    network.links_.emplace_back(profile);
  return network;
}

const SimulatedNetwork& HeterogeneousNetwork::link(std::size_t client) const {
  if (client >= links_.size())
    throw InvalidArgument("HeterogeneousNetwork: client index out of range");
  return links_[client];
}

double HeterogeneousNetwork::min_bandwidth_mbps() const {
  double value = links_.front().profile().bandwidth_mbps;
  for (const SimulatedNetwork& link : links_)
    value = std::min(value, link.profile().bandwidth_mbps);
  return value;
}

double HeterogeneousNetwork::max_bandwidth_mbps() const {
  double value = links_.front().profile().bandwidth_mbps;
  for (const SimulatedNetwork& link : links_)
    value = std::max(value, link.profile().bandwidth_mbps);
  return value;
}

HeterogeneousNetwork build_links(
    const std::optional<HeterogeneousNetworkConfig>& config,
    NetworkProfile fallback, std::size_t nodes) {
  if (config) return HeterogeneousNetwork(*config, nodes);
  return HeterogeneousNetwork::homogeneous(fallback, nodes);
}

double HeterogeneousNetwork::mean_bandwidth_mbps() const {
  double sum = 0.0;
  for (const SimulatedNetwork& link : links_)
    sum += link.profile().bandwidth_mbps;
  return sum / static_cast<double>(links_.size());
}

}  // namespace fedsz::net

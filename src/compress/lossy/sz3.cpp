// SZ3 analogue (Liang et al. 2023 / Zhao et al. 2021): multi-level spline
// interpolation prediction. Index 0 is seeded, then strides halve from the
// largest power of two; each point at an odd multiple of the stride is
// predicted from already-reconstructed neighbors (cubic 4-point spline when
// both outer neighbors exist, else linear, else previous). No per-block
// coefficients are stored — SZ3's key advantage over SZ2 at high error
// bounds — at the cost of a more expensive traversal. Residuals share the
// SZ2 quantizer/Huffman/LZ back end.
#include <bit>
#include <cmath>
#include <cstring>

#include "compress/lossless/huffman.hpp"
#include "compress/lossless/lossless.hpp"
#include "compress/lossy/lossy.hpp"
#include "compress/lossy/quantizer.hpp"

namespace fedsz::lossy {

namespace {

/// Visit indices level by level: stride = 2^k halving to 1, points at odd
/// multiples of the stride. Every index in [1, n) is visited exactly once and
/// its neighbors at +-stride (multiples of 2*stride) are always visited
/// earlier, so interpolation uses reconstructed data only.
template <typename Fn>
void for_each_interpolation_point(std::size_t n, Fn&& fn) {
  if (n < 2) return;
  std::size_t stride = std::bit_floor(n - 1);
  for (; stride >= 1; stride /= 2) {
    for (std::size_t i = stride; i < n; i += 2 * stride) fn(i, stride);
    if (stride == 1) break;
  }
}

/// Predict reconstructed[i] from already-decoded grid points.
double interpolate(const std::vector<float>& recon, std::size_t i,
                   std::size_t stride, std::size_t n) {
  const bool has_right = i + stride < n;
  const bool has_far_left = i >= 3 * stride;
  const bool has_far_right = i + 3 * stride < n;
  if (has_right && has_far_left && has_far_right) {
    // Cubic spline through the four surrounding coarse points.
    return (-static_cast<double>(recon[i - 3 * stride]) +
            9.0 * recon[i - stride] + 9.0 * recon[i + stride] -
            static_cast<double>(recon[i + 3 * stride])) /
           16.0;
  }
  if (has_right)
    return 0.5 * (static_cast<double>(recon[i - stride]) + recon[i + stride]);
  return recon[i - stride];
}

class Sz3Codec final : public LossyCodec {
 public:
  LossyId id() const override { return LossyId::kSz3; }
  std::string name() const override { return "sz3"; }
  bool strictly_bounded() const override { return true; }

  Bytes compress(FloatSpan data, const ErrorBound& bound) const override {
    require_finite(data, name());
    const double eps = bound.absolute_for(data);

    ByteWriter body;
    body.put_varint(data.size());
    body.put_f64(eps);
    if (data.empty()) {
      return lossless::lossless_codec(lossless::LosslessId::kZstd)
          .compress({body.finish()});
    }

    const LinearQuantizer quantizer(eps);
    const std::size_t n = data.size();
    // Codes are emitted in traversal order (seed, then level order).
    std::vector<std::uint32_t> codes;
    codes.reserve(n);
    std::vector<float> verbatim;
    std::vector<float> recon(n, 0.0f);

    auto encode_point = [&](std::size_t i, double pred) {
      const double residual = static_cast<double>(data[i]) - pred;
      const std::uint32_t code = quantizer.quantize(residual);
      codes.push_back(code);
      if (code == LinearQuantizer::kUnpredictable) {
        verbatim.push_back(data[i]);
        recon[i] = data[i];
      } else {
        recon[i] = static_cast<float>(pred + quantizer.reconstruct(code));
      }
    };

    encode_point(0, 0.0);
    for_each_interpolation_point(n, [&](std::size_t i, std::size_t stride) {
      encode_point(i, interpolate(recon, i, stride, n));
    });

    const Bytes huffman = lossless::huffman_encode(codes);
    body.put_blob({huffman.data(), huffman.size()});
    body.put_varint(verbatim.size());
    body.put_bytes(as_bytes({verbatim.data(), verbatim.size()}));
    return lossless::lossless_codec(lossless::LosslessId::kZstd)
        .compress({body.finish()});
  }

  std::vector<float> decompress(ByteSpan stream) const override {
    const Bytes body = lossless::lossless_codec(lossless::LosslessId::kZstd)
                           .decompress(stream);
    ByteReader r({body.data(), body.size()});
    const auto n = static_cast<std::size_t>(r.get_varint());
    const double eps = r.get_f64();
    if (n == 0) return {};

    const LinearQuantizer quantizer(eps);
    const Bytes huffman = r.get_blob();
    const auto codes = lossless::huffman_decode({huffman.data(),
                                                 huffman.size()});
    if (codes.size() != n) throw CorruptStream("sz3: code count mismatch");
    const auto n_verbatim = static_cast<std::size_t>(r.get_varint());
    // Guard the multiply below: a corrupt count can wrap n_verbatim * 4 to
    // a small value and request an absurd allocation.
    if (n_verbatim > r.remaining() / sizeof(float))
      throw CorruptStream("sz3: verbatim count exceeds stream");
    ByteSpan raw = r.get_bytes(n_verbatim * sizeof(float));
    std::vector<float> verbatim(n_verbatim);
    if (n_verbatim > 0) std::memcpy(verbatim.data(), raw.data(), raw.size());

    std::vector<float> recon(n, 0.0f);
    std::size_t next_code = 0, next_verbatim = 0;
    auto decode_point = [&](std::size_t i, double pred) {
      const std::uint32_t code = codes[next_code++];
      if (code == LinearQuantizer::kUnpredictable) {
        if (next_verbatim >= verbatim.size())
          throw CorruptStream("sz3: verbatim stream exhausted");
        recon[i] = verbatim[next_verbatim++];
      } else {
        recon[i] = static_cast<float>(pred + quantizer.reconstruct(code));
      }
    };

    decode_point(0, 0.0);
    for_each_interpolation_point(n, [&](std::size_t i, std::size_t stride) {
      decode_point(i, interpolate(recon, i, stride, n));
    });
    return recon;
  }
};

}  // namespace

const LossyCodec& sz3_codec_instance() {
  static const Sz3Codec codec;
  return codec;
}

}  // namespace fedsz::lossy

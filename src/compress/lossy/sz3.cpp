// SZ3 analogue (Liang et al. 2023 / Zhao et al. 2021): multi-level spline
// interpolation prediction. Index 0 is seeded, then strides halve from the
// largest power of two; each point at an odd multiple of the stride is
// predicted from already-reconstructed neighbors (cubic 4-point spline when
// both outer neighbors exist, else linear, else previous). No per-block
// coefficients are stored — SZ3's key advantage over SZ2 at high error
// bounds — at the cost of a more expensive traversal. Residuals share the
// SZ2 quantizer/Huffman/LZ back end.
//
// The traversal is laid out as explicit per-level loops: within one stride
// the first point is never cubic (no far-left neighbor), every interior
// point while i + 3*stride < n is always cubic, and at most two tail points
// fall back to linear/previous — so the boundary checks run per level, not
// per element, and the cubic inner loop is branchless on geometry.
#include <bit>
#include <cmath>
#include <cstring>

#include "compress/lossless/huffman.hpp"
#include "compress/lossless/lossless.hpp"
#include "compress/lossy/arena.hpp"
#include "compress/lossy/lossy.hpp"
#include "compress/lossy/quantizer.hpp"

namespace fedsz::lossy {

namespace {

class Sz3Codec final : public LossyCodec {
 public:
  LossyId id() const override { return LossyId::kSz3; }
  std::string name() const override { return "sz3"; }
  bool strictly_bounded() const override { return true; }

  Bytes compress(FloatSpan data, const ErrorBound& bound) const override {
    Bytes out;
    compress_into(data, bound, out);
    return out;
  }

  void compress_into(FloatSpan data, const ErrorBound& bound,
                     Bytes& out) const override {
    require_finite(data, name());
    const double eps = bound.absolute_for(data);
    EncodeArena& arena = EncodeArena::local();
    const lossless::LosslessCodec& backend =
        lossless::lossless_codec(lossless::LosslessId::kZstd);

    ByteWriter& body = arena.body;
    body.reset();
    body.put_varint(data.size());
    body.put_f64(eps);
    if (data.empty()) {
      backend.compress_into(body.view(), out);
      return;
    }

    const LinearQuantizer quantizer(eps);
    const std::size_t n = data.size();
    // Codes are emitted in traversal order (seed, then level order).
    arena.codes.resize(n);
    arena.verbatim.clear();
    arena.recon.resize(n);
    std::uint32_t* codes = arena.codes.data();
    float* recon = arena.recon.data();
    std::size_t pos = 0;

    const auto encode_point = [&](std::size_t i, double pred) {
      const double residual = static_cast<double>(data[i]) - pred;
      const std::uint32_t code = quantizer.quantize(residual);
      codes[pos++] = code;
      if (code == LinearQuantizer::kUnpredictable) {
        arena.verbatim.push_back(data[i]);
        recon[i] = data[i];
      } else {
        recon[i] = static_cast<float>(pred + quantizer.reconstruct(code));
      }
    };

    encode_point(0, 0.0);
    if (n >= 2) {
      for (std::size_t stride = std::bit_floor(n - 1); stride >= 1;
           stride /= 2) {
        // First point of the level (i = stride < 3*stride): never cubic.
        std::size_t i = stride;
        if (i + stride < n) {
          encode_point(i, 0.5 * (static_cast<double>(recon[i - stride]) +
                                 recon[i + stride]));
        } else {
          encode_point(i, recon[i - stride]);
        }
        // Interior points: all four neighbors exist, always cubic.
        for (i += 2 * stride; i + 3 * stride < n; i += 2 * stride) {
          const double pred = (-static_cast<double>(recon[i - 3 * stride]) +
                               9.0 * recon[i - stride] +
                               9.0 * recon[i + stride] -
                               static_cast<double>(recon[i + 3 * stride])) /
                              16.0;
          encode_point(i, pred);
        }
        // At most two tail points: linear when the right neighbor exists.
        for (; i < n; i += 2 * stride) {
          if (i + stride < n) {
            encode_point(i, 0.5 * (static_cast<double>(recon[i - stride]) +
                                   recon[i + stride]));
          } else {
            encode_point(i, recon[i - stride]);
          }
        }
        if (stride == 1) break;
      }
    }

    arena.entropy.reset();
    lossless::huffman_encode(arena.codes, arena.entropy, arena.bits,
                             arena.huff);
    body.put_blob(arena.entropy.view());
    body.put_varint(arena.verbatim.size());
    body.put_bytes(as_bytes({arena.verbatim.data(), arena.verbatim.size()}));
    backend.compress_into(body.view(), out);
  }

  std::vector<float> decompress(ByteSpan stream) const override {
    const Bytes body = lossless::lossless_codec(lossless::LosslessId::kZstd)
                           .decompress(stream);
    ByteReader r({body.data(), body.size()});
    const auto n = static_cast<std::size_t>(r.get_varint());
    const double eps = r.get_f64();
    if (n == 0) return {};

    const LinearQuantizer quantizer(eps);
    EncodeArena& arena = EncodeArena::local();
    const ByteSpan huffman = r.get_blob_view();
    lossless::huffman_decode(huffman, arena.codes);
    if (arena.codes.size() != n) throw CorruptStream("sz3: code count mismatch");
    // Validate every entropy-decoded code up front (reconstruct() itself no
    // longer range-checks in the hot loop).
    const std::uint32_t code_limit = 2 * quantizer.radius();
    for (const std::uint32_t code : arena.codes)
      if (code >= code_limit)
        throw CorruptStream("sz3: quantizer code out of range");
    const auto n_verbatim = static_cast<std::size_t>(r.get_varint());
    // Guard the multiply below: a corrupt count can wrap n_verbatim * 4 to
    // a small value and request an absurd allocation.
    if (n_verbatim > r.remaining() / sizeof(float))
      throw CorruptStream("sz3: verbatim count exceeds stream");
    ByteSpan raw = r.get_bytes(n_verbatim * sizeof(float));
    arena.verbatim.resize(n_verbatim);
    if (n_verbatim > 0)
      std::memcpy(arena.verbatim.data(), raw.data(), raw.size());

    std::vector<float> out(n, 0.0f);
    float* recon = out.data();
    const std::uint32_t* codes = arena.codes.data();
    std::size_t next_code = 0, next_verbatim = 0;
    const auto decode_point = [&](std::size_t i, double pred) {
      const std::uint32_t code = codes[next_code++];
      if (code == LinearQuantizer::kUnpredictable) {
        if (next_verbatim >= arena.verbatim.size())
          throw CorruptStream("sz3: verbatim stream exhausted");
        recon[i] = arena.verbatim[next_verbatim];
        ++next_verbatim;
      } else {
        recon[i] = static_cast<float>(pred + quantizer.reconstruct(code));
      }
    };

    decode_point(0, 0.0);
    if (n >= 2) {
      for (std::size_t stride = std::bit_floor(n - 1); stride >= 1;
           stride /= 2) {
        std::size_t i = stride;
        if (i + stride < n) {
          decode_point(i, 0.5 * (static_cast<double>(recon[i - stride]) +
                                 recon[i + stride]));
        } else {
          decode_point(i, recon[i - stride]);
        }
        for (i += 2 * stride; i + 3 * stride < n; i += 2 * stride) {
          const double pred = (-static_cast<double>(recon[i - 3 * stride]) +
                               9.0 * recon[i - stride] +
                               9.0 * recon[i + stride] -
                               static_cast<double>(recon[i + 3 * stride])) /
                              16.0;
          decode_point(i, pred);
        }
        for (; i < n; i += 2 * stride) {
          if (i + stride < n) {
            decode_point(i, 0.5 * (static_cast<double>(recon[i - stride]) +
                                   recon[i + stride]));
          } else {
            decode_point(i, recon[i - stride]);
          }
        }
        if (stride == 1) break;
      }
    }
    return out;
  }
};

}  // namespace

const LossyCodec& sz3_codec_instance() {
  static const Sz3Codec codec;
  return codec;
}

}  // namespace fedsz::lossy

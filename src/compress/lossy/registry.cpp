#include <cmath>

#include "compress/lossy/lossy.hpp"

namespace fedsz::lossy {

const LossyCodec& sz2_codec_instance();
const LossyCodec& sz3_codec_instance();
const LossyCodec& szx_codec_instance();
const LossyCodec& zfp_codec_instance();

const LossyCodec& lossy_codec(LossyId id) {
  switch (id) {
    case LossyId::kSz2:
      return sz2_codec_instance();
    case LossyId::kSz3:
      return sz3_codec_instance();
    case LossyId::kSzx:
      return szx_codec_instance();
    case LossyId::kZfp:
      return zfp_codec_instance();
  }
  throw InvalidArgument("lossy_codec: unknown codec id");
}

const LossyCodec& lossy_codec(const std::string& name) {
  for (const LossyCodec* codec : all_lossy_codecs())
    if (codec->name() == name) return *codec;
  throw InvalidArgument("lossy_codec: unknown codec '" + name + "'");
}

std::vector<const LossyCodec*> all_lossy_codecs() {
  return {&sz2_codec_instance(), &sz3_codec_instance(), &szx_codec_instance(),
          &zfp_codec_instance()};
}

bool is_lossy_id(std::uint8_t raw) {
  switch (static_cast<LossyId>(raw)) {
    case LossyId::kSz2:
    case LossyId::kSz3:
    case LossyId::kSzx:
    case LossyId::kZfp:
      return true;
  }
  return false;
}

void LossyCodec::compress_into(FloatSpan data, const ErrorBound& bound,
                               Bytes& out) const {
  const Bytes fresh = compress(data, bound);
  out.assign(fresh.begin(), fresh.end());
}

void require_finite(FloatSpan data, const std::string& codec_name) {
  for (const float v : data)
    if (!std::isfinite(v))
      throw InvalidArgument(codec_name + ": input contains non-finite values");
}

}  // namespace fedsz::lossy

#include "compress/lossy/arena.hpp"

namespace fedsz::lossy {

EncodeArena& EncodeArena::local() {
  static thread_local EncodeArena arena;
  return arena;
}

std::size_t EncodeArena::capacity_bytes() const {
  return codes.capacity() * sizeof(std::uint32_t) +
         verbatim.capacity() * sizeof(float) +
         recon.capacity() * sizeof(float) + tags.capacity() +
         coeffs.capacity() * sizeof(float) + body.capacity() +
         entropy.capacity() + bits.capacity() + huff.capacity_bytes();
}

}  // namespace fedsz::lossy

// SZx analogue (Yu et al., HPDC'22): designed for raw speed. The array is cut
// into fixed blocks; a block whose value range fits inside 2*epsilon is a
// "constant block" stored as a single f32 midpoint; other blocks store
// error-bounded fixed-point codes packed at the per-block minimum bit width
// (the bit-wise truncation model). No prediction, no entropy coding, no LZ —
// which is why SZx tops the throughput column of Table I by orders of
// magnitude while offering the least rate flexibility.
//
// Note: this implementation honors the error bound exactly, so unlike the
// paper's observed SZx accuracy collapse (attributed by the authors to block
// mean storage), model accuracy is preserved; see EXPERIMENTS.md.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "compress/lossy/arena.hpp"
#include "compress/lossy/lossy.hpp"
#include "util/bitstream.hpp"
#include "util/bytebuffer.hpp"

namespace fedsz::lossy {

namespace {

constexpr std::size_t kBlockSize = 128;
constexpr std::uint8_t kBlockConstant = 0;
constexpr std::uint8_t kBlockPacked = 1;
constexpr std::uint8_t kBlockVerbatim = 2;

class SzxCodec final : public LossyCodec {
 public:
  LossyId id() const override { return LossyId::kSzx; }
  std::string name() const override { return "szx"; }
  bool strictly_bounded() const override { return true; }

  Bytes compress(FloatSpan data, const ErrorBound& bound) const override {
    Bytes out;
    compress_into(data, bound, out);
    return out;
  }

  void compress_into(FloatSpan data, const ErrorBound& bound,
                     Bytes& out) const override {
    require_finite(data, name());
    const double eps = bound.absolute_for(data);
    EncodeArena& arena = EncodeArena::local();

    ByteWriter& w = arena.body;
    w.reset();
    w.put_varint(data.size());
    w.put_f64(eps);
    if (data.empty()) {
      const ByteSpan frame = w.view();
      out.assign(frame.begin(), frame.end());
      return;
    }

    const double step = eps > 0.0 ? 2.0 * eps : 0.0;
    const std::size_t n_blocks = (data.size() + kBlockSize - 1) / kBlockSize;
    for (std::size_t b = 0; b < n_blocks; ++b) {
      const std::size_t begin = b * kBlockSize;
      const std::size_t len = std::min(kBlockSize, data.size() - begin);
      FloatSpan block = data.subspan(begin, len);
      float lo = block[0], hi = block[0];
      for (const float v : block) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      const double range = static_cast<double>(hi) - lo;
      const float mid = static_cast<float>(0.5 * (static_cast<double>(hi) + lo));
      if (range <= step && std::fabs(static_cast<double>(mid) - lo) <= eps) {
        w.put_u8(kBlockConstant);
        w.put_f32(mid);
        continue;
      }
      if (step <= 0.0) {  // degenerate bound: store exactly
        w.put_u8(kBlockVerbatim);
        w.put_bytes(as_bytes(block));
        continue;
      }
      // Fixed-point codes relative to the block minimum.
      const auto max_code = static_cast<std::uint64_t>(
          std::llround(range / step) + 1);
      const unsigned bits = std::bit_width(max_code);
      if (bits >= 32) {  // bound far below float resolution: store exactly
        w.put_u8(kBlockVerbatim);
        w.put_bytes(as_bytes(block));
        continue;
      }
      w.put_u8(kBlockPacked);
      w.put_u8(static_cast<std::uint8_t>(bits));
      w.put_f32(lo);
      BitWriter& bw = arena.bits;
      bw.reset();
      for (const float v : block) {
        const auto code = static_cast<std::uint64_t>(
            std::llround((static_cast<double>(v) - lo) / step));
        bw.write(code, bits);
      }
      w.put_blob(bw.finish_view());
      bw.reset();
    }
    const ByteSpan frame = w.view();
    out.assign(frame.begin(), frame.end());
  }

  std::vector<float> decompress(ByteSpan stream) const override {
    ByteReader r(stream);
    const auto n = static_cast<std::size_t>(r.get_varint());
    const double eps = r.get_f64();
    const double step = 2.0 * eps;
    std::vector<float> out;
    // Advisory only — clamp so a corrupt element count cannot force a huge
    // up-front allocation; the block loop grows the vector as data arrives.
    out.reserve(std::min(n, r.remaining()));
    const std::size_t n_blocks = (n + kBlockSize - 1) / kBlockSize;
    for (std::size_t b = 0; b < n_blocks; ++b) {
      const std::size_t len = std::min(kBlockSize, n - out.size());
      const std::uint8_t tag = r.get_u8();
      if (tag == kBlockConstant) {
        const float mid = r.get_f32();
        out.insert(out.end(), len, mid);
      } else if (tag == kBlockVerbatim) {
        ByteSpan raw = r.get_bytes(len * sizeof(float));
        const std::size_t start = out.size();
        out.resize(start + len);
        std::memcpy(out.data() + start, raw.data(), raw.size());
      } else if (tag == kBlockPacked) {
        const unsigned bits = r.get_u8();
        const float lo = r.get_f32();
        const ByteSpan packed = r.get_blob_view();
        BitReader br(packed);
        const std::size_t start = out.size();
        out.resize(start + len);
        float* values = out.data() + start;
        for (std::size_t i = 0; i < len; ++i) {
          const std::uint64_t code = br.read(bits);
          values[i] =
              static_cast<float>(lo + static_cast<double>(code) * step);
        }
      } else {
        throw CorruptStream("szx: unknown block tag");
      }
    }
    if (out.size() != n) throw CorruptStream("szx: size mismatch");
    return out;
  }
};

}  // namespace

const LossyCodec& szx_codec_instance() {
  static const SzxCodec codec;
  return codec;
}

}  // namespace fedsz::lossy

// SZ2 analogue (prediction-based model, Liang et al. 2018): the array is cut
// into fixed blocks; each block selects between a Lorenzo predictor (previous
// reconstructed value) and a per-block linear regression (stored as two f32
// coefficients); prediction residuals are quantized into error-bounded bins,
// entropy-coded with canonical Huffman, and the whole body is passed through
// the LZ back end — the SZ2 pipeline of Section II-A. Out-of-range residuals
// are stored verbatim (exact), preserving the hard error bound.
#include <cmath>
#include <cstring>

#include "compress/lossless/huffman.hpp"
#include "compress/lossless/lossless.hpp"
#include "compress/lossy/lossy.hpp"
#include "compress/lossy/quantizer.hpp"
#include "util/bytebuffer.hpp"
#include "util/stats.hpp"

namespace fedsz::lossy {

namespace {

constexpr std::size_t kBlockSize = 256;
constexpr std::uint8_t kPredictorLorenzo = 0;
constexpr std::uint8_t kPredictorRegression = 1;

struct Regression {
  float slope = 0.0f;
  float intercept = 0.0f;
};

/// Least-squares fit of x[i] ~ intercept + slope * i over a block.
Regression fit_regression(FloatSpan block) {
  const std::size_t n = block.size();
  if (n == 1) return {0.0f, block[0]};
  double sum_x = 0.0, sum_i = 0.0, sum_ix = 0.0, sum_ii = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = block[i];
    const double di = static_cast<double>(i);
    sum_x += xi;
    sum_i += di;
    sum_ix += di * xi;
    sum_ii += di * di;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sum_ii - sum_i * sum_i;
  double slope = denom != 0.0 ? (dn * sum_ix - sum_i * sum_x) / denom : 0.0;
  double intercept = (sum_x - slope * sum_i) / dn;
  return {static_cast<float>(slope), static_cast<float>(intercept)};
}

/// Estimated absolute prediction error of each candidate over a block
/// (selection heuristic; actual encoding uses reconstructed-value Lorenzo).
double lorenzo_cost(FloatSpan block, float prev) {
  double cost = 0.0;
  float last = prev;
  for (const float v : block) {
    cost += std::fabs(static_cast<double>(v) - last);
    last = v;
  }
  return cost;
}

double regression_cost(FloatSpan block, const Regression& reg) {
  double cost = 0.0;
  for (std::size_t i = 0; i < block.size(); ++i) {
    const double pred =
        static_cast<double>(reg.intercept) +
        static_cast<double>(reg.slope) * static_cast<double>(i);
    cost += std::fabs(static_cast<double>(block[i]) - pred);
  }
  return cost;
}

class Sz2Codec final : public LossyCodec {
 public:
  LossyId id() const override { return LossyId::kSz2; }
  std::string name() const override { return "sz2"; }
  bool strictly_bounded() const override { return true; }

  Bytes compress(FloatSpan data, const ErrorBound& bound) const override {
    require_finite(data, name());
    const double eps = bound.absolute_for(data);

    ByteWriter body;
    body.put_varint(data.size());
    body.put_f64(eps);
    if (data.empty()) {
      return lossless::lossless_codec(lossless::LosslessId::kZstd)
          .compress({body.finish()});
    }

    const LinearQuantizer quantizer(eps);
    const std::size_t n_blocks = (data.size() + kBlockSize - 1) / kBlockSize;

    std::vector<std::uint8_t> predictor_tags(n_blocks);
    std::vector<Regression> regressions(n_blocks);
    std::vector<std::uint32_t> codes;
    codes.reserve(data.size());
    std::vector<float> verbatim;

    float last_reconstructed = 0.0f;
    for (std::size_t b = 0; b < n_blocks; ++b) {
      const std::size_t begin = b * kBlockSize;
      const std::size_t len = std::min(kBlockSize, data.size() - begin);
      FloatSpan block = data.subspan(begin, len);

      const Regression reg = fit_regression(block);
      const bool use_regression =
          regression_cost(block, reg) <
          lorenzo_cost(block, b == 0 ? 0.0f : data[begin - 1]);
      predictor_tags[b] = use_regression ? kPredictorRegression
                                         : kPredictorLorenzo;
      regressions[b] = reg;

      for (std::size_t i = 0; i < len; ++i) {
        const double pred =
            use_regression
                ? static_cast<double>(reg.intercept) +
                      static_cast<double>(reg.slope) * static_cast<double>(i)
                : static_cast<double>(last_reconstructed);
        const double residual = static_cast<double>(block[i]) - pred;
        const std::uint32_t code = quantizer.quantize(residual);
        codes.push_back(code);
        if (code == LinearQuantizer::kUnpredictable) {
          verbatim.push_back(block[i]);
          last_reconstructed = block[i];
        } else {
          last_reconstructed =
              static_cast<float>(pred + quantizer.reconstruct(code));
        }
      }
    }

    for (std::size_t b = 0; b < n_blocks; ++b) {
      body.put_u8(predictor_tags[b]);
      if (predictor_tags[b] == kPredictorRegression) {
        body.put_f32(regressions[b].slope);
        body.put_f32(regressions[b].intercept);
      }
    }
    const Bytes huffman = lossless::huffman_encode(codes);
    body.put_blob({huffman.data(), huffman.size()});
    body.put_varint(verbatim.size());
    body.put_bytes(as_bytes({verbatim.data(), verbatim.size()}));

    return lossless::lossless_codec(lossless::LosslessId::kZstd)
        .compress({body.finish()});
  }

  std::vector<float> decompress(ByteSpan stream) const override {
    const Bytes body = lossless::lossless_codec(lossless::LosslessId::kZstd)
                           .decompress(stream);
    ByteReader r({body.data(), body.size()});
    const auto n = static_cast<std::size_t>(r.get_varint());
    const double eps = r.get_f64();
    std::vector<float> out;
    if (n == 0) return out;
    out.reserve(n);

    const LinearQuantizer quantizer(eps);
    const std::size_t n_blocks = (n + kBlockSize - 1) / kBlockSize;
    std::vector<std::uint8_t> predictor_tags(n_blocks);
    std::vector<Regression> regressions(n_blocks);
    for (std::size_t b = 0; b < n_blocks; ++b) {
      predictor_tags[b] = r.get_u8();
      if (predictor_tags[b] == kPredictorRegression) {
        regressions[b].slope = r.get_f32();
        regressions[b].intercept = r.get_f32();
      } else if (predictor_tags[b] != kPredictorLorenzo) {
        throw CorruptStream("sz2: unknown predictor tag");
      }
    }
    const Bytes huffman = r.get_blob();
    const auto codes = lossless::huffman_decode({huffman.data(),
                                                 huffman.size()});
    if (codes.size() != n) throw CorruptStream("sz2: code count mismatch");
    const auto n_verbatim = static_cast<std::size_t>(r.get_varint());
    // Guard the multiply below: a corrupt count can wrap n_verbatim * 4 to
    // a small value and request an absurd allocation.
    if (n_verbatim > r.remaining() / sizeof(float))
      throw CorruptStream("sz2: verbatim count exceeds stream");
    ByteSpan raw = r.get_bytes(n_verbatim * sizeof(float));
    std::vector<float> verbatim(n_verbatim);
    if (n_verbatim > 0) std::memcpy(verbatim.data(), raw.data(), raw.size());

    std::size_t v = 0;
    float last_reconstructed = 0.0f;
    for (std::size_t b = 0; b < n_blocks; ++b) {
      const std::size_t begin = b * kBlockSize;
      const std::size_t len = std::min(kBlockSize, n - begin);
      const bool use_regression = predictor_tags[b] == kPredictorRegression;
      for (std::size_t i = 0; i < len; ++i) {
        const std::uint32_t code = codes[begin + i];
        float value;
        if (code == LinearQuantizer::kUnpredictable) {
          if (v >= verbatim.size())
            throw CorruptStream("sz2: verbatim stream exhausted");
          value = verbatim[v++];
        } else {
          const double pred =
              use_regression
                  ? static_cast<double>(regressions[b].intercept) +
                        static_cast<double>(regressions[b].slope) *
                            static_cast<double>(i)
                  : static_cast<double>(last_reconstructed);
          value = static_cast<float>(pred + quantizer.reconstruct(code));
        }
        out.push_back(value);
        last_reconstructed = value;
      }
    }
    return out;
  }
};

}  // namespace

const LossyCodec& sz2_codec_instance() {
  static const Sz2Codec codec;
  return codec;
}

}  // namespace fedsz::lossy

// SZ2 analogue (prediction-based model, Liang et al. 2018): the array is cut
// into fixed blocks; each block selects between a Lorenzo predictor (previous
// reconstructed value) and a per-block linear regression (stored as two f32
// coefficients); prediction residuals are quantized into error-bounded bins,
// entropy-coded with canonical Huffman, and the whole body is passed through
// the LZ back end — the SZ2 pipeline of Section II-A. Out-of-range residuals
// are stored verbatim (exact), preserving the hard error bound.
//
// Encode runs as contiguous passes — predictor selection over every block,
// then a predict->quantize->reconstruct sweep with per-predictor inner
// loops — and draws all working buffers from the thread's EncodeArena, so
// steady-state encode allocates nothing and the inner loops carry no
// per-element branching on the predictor kind.
#include <cmath>
#include <cstring>

#include "compress/lossless/huffman.hpp"
#include "compress/lossless/lossless.hpp"
#include "compress/lossy/arena.hpp"
#include "compress/lossy/lossy.hpp"
#include "compress/lossy/quantizer.hpp"
#include "util/bytebuffer.hpp"
#include "util/stats.hpp"

namespace fedsz::lossy {

namespace {

constexpr std::size_t kBlockSize = 256;
constexpr std::uint8_t kPredictorLorenzo = 0;
constexpr std::uint8_t kPredictorRegression = 1;

struct Regression {
  float slope = 0.0f;
  float intercept = 0.0f;
};

/// Least-squares fit of x[i] ~ intercept + slope * i over a block. The
/// index sums are closed-form: for n <= kBlockSize they are exact integers
/// in double, identical to accumulating them in the data loop, so only the
/// two data-dependent sums remain per-element work.
Regression fit_regression(FloatSpan block) {
  const std::size_t n = block.size();
  if (n == 1) return {0.0f, block[0]};
  double sum_x = 0.0, sum_ix = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = block[i];
    sum_x += xi;
    sum_ix += static_cast<double>(i) * xi;
  }
  const double dn = static_cast<double>(n);
  const double sum_i = static_cast<double>(n * (n - 1) / 2);
  const double sum_ii = static_cast<double>((n - 1) * n * (2 * n - 1) / 6);
  const double denom = dn * sum_ii - sum_i * sum_i;
  double slope = denom != 0.0 ? (dn * sum_ix - sum_i * sum_x) / denom : 0.0;
  double intercept = (sum_x - slope * sum_i) / dn;
  return {static_cast<float>(slope), static_cast<float>(intercept)};
}

/// Estimated absolute prediction error of each candidate over a block
/// (selection heuristic; actual encoding uses reconstructed-value Lorenzo).
double lorenzo_cost(FloatSpan block, float prev) {
  double cost = 0.0;
  float last = prev;
  for (const float v : block) {
    cost += std::fabs(static_cast<double>(v) - last);
    last = v;
  }
  return cost;
}

double regression_cost(FloatSpan block, const Regression& reg) {
  double cost = 0.0;
  for (std::size_t i = 0; i < block.size(); ++i) {
    const double pred =
        static_cast<double>(reg.intercept) +
        static_cast<double>(reg.slope) * static_cast<double>(i);
    cost += std::fabs(static_cast<double>(block[i]) - pred);
  }
  return cost;
}

class Sz2Codec final : public LossyCodec {
 public:
  LossyId id() const override { return LossyId::kSz2; }
  std::string name() const override { return "sz2"; }
  bool strictly_bounded() const override { return true; }

  Bytes compress(FloatSpan data, const ErrorBound& bound) const override {
    Bytes out;
    compress_into(data, bound, out);
    return out;
  }

  void compress_into(FloatSpan data, const ErrorBound& bound,
                     Bytes& out) const override {
    require_finite(data, name());
    const double eps = bound.absolute_for(data);
    EncodeArena& arena = EncodeArena::local();
    const lossless::LosslessCodec& backend =
        lossless::lossless_codec(lossless::LosslessId::kZstd);

    ByteWriter& body = arena.body;
    body.reset();
    body.put_varint(data.size());
    body.put_f64(eps);
    if (data.empty()) {
      backend.compress_into(body.view(), out);
      return;
    }

    const LinearQuantizer quantizer(eps);
    const std::size_t n_blocks = (data.size() + kBlockSize - 1) / kBlockSize;

    arena.tags.resize(n_blocks);
    arena.coeffs.resize(2 * n_blocks);  // (slope, intercept) per block
    arena.codes.resize(data.size());
    arena.verbatim.clear();

    // Pass 1: predictor selection per block. Costs depend only on the
    // original data, so this pass is independent of reconstruction state.
    for (std::size_t b = 0; b < n_blocks; ++b) {
      const std::size_t begin = b * kBlockSize;
      const std::size_t len = std::min(kBlockSize, data.size() - begin);
      FloatSpan block = data.subspan(begin, len);
      const Regression reg = fit_regression(block);
      const bool use_regression =
          regression_cost(block, reg) <
          lorenzo_cost(block, b == 0 ? 0.0f : data[begin - 1]);
      arena.tags[b] = use_regression ? kPredictorRegression
                                     : kPredictorLorenzo;
      arena.coeffs[2 * b] = reg.slope;
      arena.coeffs[2 * b + 1] = reg.intercept;
    }

    // Pass 2: predict -> quantize -> reconstruct, one contiguous sweep with
    // the predictor branch hoisted to block level.
    std::uint32_t* codes = arena.codes.data();
    float last_reconstructed = 0.0f;
    for (std::size_t b = 0; b < n_blocks; ++b) {
      const std::size_t begin = b * kBlockSize;
      const std::size_t len = std::min(kBlockSize, data.size() - begin);
      const float* block = data.data() + begin;
      std::uint32_t* block_codes = codes + begin;
      if (arena.tags[b] == kPredictorRegression) {
        const auto slope = static_cast<double>(arena.coeffs[2 * b]);
        const auto intercept = static_cast<double>(arena.coeffs[2 * b + 1]);
        for (std::size_t i = 0; i < len; ++i) {
          const double pred = intercept + slope * static_cast<double>(i);
          const double residual = static_cast<double>(block[i]) - pred;
          const std::uint32_t code = quantizer.quantize(residual);
          block_codes[i] = code;
          if (code == LinearQuantizer::kUnpredictable) {
            arena.verbatim.push_back(block[i]);
            last_reconstructed = block[i];
          } else {
            last_reconstructed =
                static_cast<float>(pred + quantizer.reconstruct(code));
          }
        }
      } else {
        for (std::size_t i = 0; i < len; ++i) {
          const double pred = static_cast<double>(last_reconstructed);
          const double residual = static_cast<double>(block[i]) - pred;
          const std::uint32_t code = quantizer.quantize(residual);
          block_codes[i] = code;
          if (code == LinearQuantizer::kUnpredictable) {
            arena.verbatim.push_back(block[i]);
            last_reconstructed = block[i];
          } else {
            last_reconstructed =
                static_cast<float>(pred + quantizer.reconstruct(code));
          }
        }
      }
    }

    for (std::size_t b = 0; b < n_blocks; ++b) {
      body.put_u8(arena.tags[b]);
      if (arena.tags[b] == kPredictorRegression) {
        body.put_f32(arena.coeffs[2 * b]);
        body.put_f32(arena.coeffs[2 * b + 1]);
      }
    }
    arena.entropy.reset();
    lossless::huffman_encode(arena.codes, arena.entropy, arena.bits,
                             arena.huff);
    body.put_blob(arena.entropy.view());
    body.put_varint(arena.verbatim.size());
    body.put_bytes(as_bytes({arena.verbatim.data(), arena.verbatim.size()}));

    backend.compress_into(body.view(), out);
  }

  std::vector<float> decompress(ByteSpan stream) const override {
    const Bytes body = lossless::lossless_codec(lossless::LosslessId::kZstd)
                           .decompress(stream);
    ByteReader r({body.data(), body.size()});
    const auto n = static_cast<std::size_t>(r.get_varint());
    const double eps = r.get_f64();
    std::vector<float> out;
    if (n == 0) return out;

    const LinearQuantizer quantizer(eps);
    EncodeArena& arena = EncodeArena::local();
    const std::size_t n_blocks = (n + kBlockSize - 1) / kBlockSize;
    arena.tags.resize(n_blocks);
    arena.coeffs.resize(2 * n_blocks);
    for (std::size_t b = 0; b < n_blocks; ++b) {
      arena.tags[b] = r.get_u8();
      if (arena.tags[b] == kPredictorRegression) {
        arena.coeffs[2 * b] = r.get_f32();
        arena.coeffs[2 * b + 1] = r.get_f32();
      } else if (arena.tags[b] != kPredictorLorenzo) {
        throw CorruptStream("sz2: unknown predictor tag");
      }
    }
    const ByteSpan huffman = r.get_blob_view();
    lossless::huffman_decode(huffman, arena.codes);
    if (arena.codes.size() != n)
      throw CorruptStream("sz2: code count mismatch");
    // Validate every entropy-decoded code up front (reconstruct() itself no
    // longer range-checks in the hot loop).
    const std::uint32_t code_limit = 2 * quantizer.radius();
    for (const std::uint32_t code : arena.codes)
      if (code >= code_limit)
        throw CorruptStream("sz2: quantizer code out of range");
    const auto n_verbatim = static_cast<std::size_t>(r.get_varint());
    // Guard the multiply below: a corrupt count can wrap n_verbatim * 4 to
    // a small value and request an absurd allocation.
    if (n_verbatim > r.remaining() / sizeof(float))
      throw CorruptStream("sz2: verbatim count exceeds stream");
    ByteSpan raw = r.get_bytes(n_verbatim * sizeof(float));
    arena.verbatim.resize(n_verbatim);
    if (n_verbatim > 0)
      std::memcpy(arena.verbatim.data(), raw.data(), raw.size());

    out.resize(n);
    const std::uint32_t* codes = arena.codes.data();
    float* values = out.data();
    std::size_t v = 0;
    float last_reconstructed = 0.0f;
    for (std::size_t b = 0; b < n_blocks; ++b) {
      const std::size_t begin = b * kBlockSize;
      const std::size_t len = std::min(kBlockSize, n - begin);
      if (arena.tags[b] == kPredictorRegression) {
        const auto slope = static_cast<double>(arena.coeffs[2 * b]);
        const auto intercept = static_cast<double>(arena.coeffs[2 * b + 1]);
        for (std::size_t i = 0; i < len; ++i) {
          const std::uint32_t code = codes[begin + i];
          float value;
          if (code == LinearQuantizer::kUnpredictable) {
            if (v >= arena.verbatim.size())
              throw CorruptStream("sz2: verbatim stream exhausted");
            value = arena.verbatim[v++];
          } else {
            const double pred = intercept + slope * static_cast<double>(i);
            value = static_cast<float>(pred + quantizer.reconstruct(code));
          }
          values[begin + i] = value;
          last_reconstructed = value;
        }
      } else {
        for (std::size_t i = 0; i < len; ++i) {
          const std::uint32_t code = codes[begin + i];
          float value;
          if (code == LinearQuantizer::kUnpredictable) {
            if (v >= arena.verbatim.size())
              throw CorruptStream("sz2: verbatim stream exhausted");
            value = arena.verbatim[v++];
          } else {
            const double pred = static_cast<double>(last_reconstructed);
            value = static_cast<float>(pred + quantizer.reconstruct(code));
          }
          values[begin + i] = value;
          last_reconstructed = value;
        }
      }
    }
    return out;
  }
};

}  // namespace

const LossyCodec& sz2_codec_instance() {
  static const Sz2Codec codec;
  return codec;
}

}  // namespace fedsz::lossy

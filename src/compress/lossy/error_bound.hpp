// Error-bound specification shared by all lossy codecs. The paper evaluates
// relative (REL) bounds exclusively (Section V-D1): the absolute tolerance is
// the bound value times the global value range of the array, adapting the
// noise floor to each layer's dynamic range.
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace fedsz::lossy {

enum class BoundMode : std::uint8_t {
  kAbsolute = 0,  // epsilon = value
  kRelative = 1,  // epsilon = value * (max - min) of the input array
};

struct ErrorBound {
  BoundMode mode = BoundMode::kRelative;
  double value = 1e-2;

  static ErrorBound absolute(double eps) {
    return ErrorBound{BoundMode::kAbsolute, eps};
  }
  static ErrorBound relative(double eps) {
    return ErrorBound{BoundMode::kRelative, eps};
  }

  /// Resolve to the absolute tolerance for a concrete array. Throws on
  /// non-positive or non-finite bound values. A constant array under REL
  /// resolves to 0 (any exact reconstruction satisfies it); callers clamp.
  double absolute_for(FloatSpan data) const;

  /// Validate the bound itself (positive, finite).
  void validate() const;
};

}  // namespace fedsz::lossy

#include "compress/lossy/quantizer.hpp"

#include <cmath>

namespace fedsz::lossy {

LinearQuantizer::LinearQuantizer(double eps, std::uint32_t radius)
    : eps_(eps), radius_(radius) {
  if (radius_ < 2) throw InvalidArgument("LinearQuantizer: radius too small");
  // A zero epsilon arises for constant arrays under relative bounds; clamp to
  // a denormal-safe floor so every residual becomes "unpredictable" (exact).
  if (!(eps_ > 0.0)) eps_ = 1e-300;
  inv_step_ = 1.0 / (2.0 * eps_);
}

std::uint32_t LinearQuantizer::quantize(double residual) const {
  const double scaled = residual * inv_step_;
  // Reject residuals whose bin index cannot be represented.
  if (!(std::fabs(scaled) < static_cast<double>(radius_) - 1.0))
    return kUnpredictable;
  const auto bin = static_cast<std::int64_t>(std::llround(scaled));
  const std::int64_t code = bin + static_cast<std::int64_t>(radius_);
  if (code < 1 || code >= 2 * static_cast<std::int64_t>(radius_))
    return kUnpredictable;
  return static_cast<std::uint32_t>(code);
}

double LinearQuantizer::reconstruct(std::uint32_t code) const {
  if (code == kUnpredictable || code >= 2 * radius_)
    throw InvalidArgument("LinearQuantizer: invalid code");
  const auto bin =
      static_cast<std::int64_t>(code) - static_cast<std::int64_t>(radius_);
  return static_cast<double>(bin) * 2.0 * eps_;
}

}  // namespace fedsz::lossy

#include "compress/lossy/quantizer.hpp"

namespace fedsz::lossy {

LinearQuantizer::LinearQuantizer(double eps, std::uint32_t radius)
    : eps_(eps), radius_(radius) {
  if (radius_ < 2) throw InvalidArgument("LinearQuantizer: radius too small");
  // A zero epsilon arises for constant arrays under relative bounds; clamp to
  // a denormal-safe floor so every residual becomes "unpredictable" (exact).
  if (!(eps_ > 0.0)) eps_ = 1e-300;
  inv_step_ = 1.0 / (2.0 * eps_);
  step_ = 2.0 * eps_;
  max_scaled_ = static_cast<double>(radius_) - 1.0;
}

}  // namespace fedsz::lossy

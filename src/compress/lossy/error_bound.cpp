#include "compress/lossy/error_bound.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace fedsz::lossy {

void ErrorBound::validate() const {
  if (!(value > 0.0) || !std::isfinite(value))
    throw InvalidArgument("ErrorBound: value must be positive and finite");
}

double ErrorBound::absolute_for(FloatSpan data) const {
  validate();
  if (mode == BoundMode::kAbsolute) return value;
  const stats::Summary s = stats::summarize(data);
  return value * s.range();
}

}  // namespace fedsz::lossy

// Error-bounded linear quantization of prediction residuals, the mechanism
// shared by the SZ2- and SZ3-like codecs: residual r maps to the integer bin
// round(r / 2eps), guaranteeing |r - reconstructed| <= eps. Bin indices are
// biased by `radius` into unsigned codes; code 0 is reserved for
// "unpredictable" values that fall outside the code range and are stored
// verbatim (and hence reconstructed exactly).
//
// quantize()/reconstruct() are header-inline: they sit in the innermost
// predict->quantize->reconstruct loops of every lossy codec, and inlining
// them removes a call per element and lets the surrounding pass vectorize.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

#include "util/common.hpp"

namespace fedsz::lossy {

class LinearQuantizer {
 public:
  static constexpr std::uint32_t kDefaultRadius = 32768;
  static constexpr std::uint32_t kUnpredictable = 0;

  explicit LinearQuantizer(double eps,
                           std::uint32_t radius = kDefaultRadius);

  /// Quantize a residual. Returns a code in [1, 2*radius - 1], or
  /// kUnpredictable if the residual does not fit.
  std::uint32_t quantize(double residual) const {
    const double scaled = residual * inv_step_;
    // Reject residuals whose bin index cannot be represented. The negated
    // comparison also routes NaNs to the verbatim path. When it passes,
    // |llround(scaled)| <= radius - 1, so the biased code always lands in
    // [1, 2*radius - 1] — no second range check is needed.
    if (!(std::fabs(scaled) < max_scaled_)) return kUnpredictable;
    const auto bin = static_cast<std::int64_t>(std::llround(scaled));
    return static_cast<std::uint32_t>(bin +
                                      static_cast<std::int64_t>(radius_));
  }

  /// Reconstruct the residual midpoint for a valid (non-zero) code. Code
  /// validity is the caller's contract: the decode paths validate every
  /// entropy-decoded code against the radius before this runs (throwing
  /// CorruptStream), so the hot loop carries only a debug assert.
  double reconstruct(std::uint32_t code) const {
    assert(code != kUnpredictable && code < 2 * radius_ &&
           "LinearQuantizer: invalid code");
    const auto bin =
        static_cast<std::int64_t>(code) - static_cast<std::int64_t>(radius_);
    // step_ == 2*eps exactly (the *2 is exact in binary FP), so this single
    // multiply rounds the same exact product bin*2*eps as the historical
    // (bin * 2.0) * eps_ expression — bit-identical output.
    return static_cast<double>(bin) * step_;
  }

  double eps() const { return eps_; }
  std::uint32_t radius() const { return radius_; }

 private:
  double eps_;
  double inv_step_;    // 1 / (2 * eps)
  double step_;        // 2 * eps (exact)
  double max_scaled_;  // radius - 1, the representable |bin| bound
  std::uint32_t radius_;
};

}  // namespace fedsz::lossy

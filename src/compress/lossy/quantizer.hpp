// Error-bounded linear quantization of prediction residuals, the mechanism
// shared by the SZ2- and SZ3-like codecs: residual r maps to the integer bin
// round(r / 2eps), guaranteeing |r - reconstructed| <= eps. Bin indices are
// biased by `radius` into unsigned codes; code 0 is reserved for
// "unpredictable" values that fall outside the code range and are stored
// verbatim (and hence reconstructed exactly).
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace fedsz::lossy {

class LinearQuantizer {
 public:
  static constexpr std::uint32_t kDefaultRadius = 32768;
  static constexpr std::uint32_t kUnpredictable = 0;

  explicit LinearQuantizer(double eps,
                           std::uint32_t radius = kDefaultRadius);

  /// Quantize a residual. Returns a code in [1, 2*radius - 1], or
  /// kUnpredictable if the residual does not fit.
  std::uint32_t quantize(double residual) const;

  /// Reconstruct the residual midpoint for a valid (non-zero) code.
  double reconstruct(std::uint32_t code) const;

  double eps() const { return eps_; }
  std::uint32_t radius() const { return radius_; }

 private:
  double eps_;
  double inv_step_;  // 1 / (2 * eps)
  std::uint32_t radius_;
};

}  // namespace fedsz::lossy

// Per-worker reusable encode/decode buffers — the zero-allocation backbone
// of the chunked FedSZ pipeline. Every lossy codec draws its working
// storage (quantizer codes, verbatim floats, reconstruction buffer, block
// tags, body/bit writers) from the calling thread's arena instead of
// allocating fresh vectors per chunk. Buffers are reset — never freed —
// between chunks and rounds, so once they have grown to the working-set
// size of the largest chunk, steady-state encode performs no heap
// allocation at all.
#pragma once

#include <cstdint>
#include <vector>

#include "compress/lossless/huffman.hpp"
#include "util/bitstream.hpp"
#include "util/bytebuffer.hpp"
#include "util/common.hpp"

namespace fedsz::lossy {

struct EncodeArena {
  std::vector<std::uint32_t> codes;  // quantizer codes, one per element
  std::vector<float> verbatim;       // out-of-range values stored exactly
  std::vector<float> recon;          // reconstructed values (SZ3 traversal)
  std::vector<std::uint8_t> tags;    // per-block predictor/block tags
  std::vector<float> coeffs;         // regression coefficient pairs (SZ2)
  ByteWriter body;                   // codec body before the LZ back end
  ByteWriter entropy;                // one entropy-coded sub-stream
  BitWriter bits;                    // bit-packing scratch
  lossless::HuffmanWorkspace huff;   // codebook-construction scratch

  /// The calling thread's arena. Thread-pool-local by construction: each
  /// pool worker owns one for the lifetime of the thread, so concurrent
  /// chunk tasks never contend and capacity persists across rounds.
  static EncodeArena& local();

  /// Total heap capacity currently held — perf-trajectory telemetry for
  /// the benches' allocations-per-encode accounting.
  std::size_t capacity_bytes() const;
};

}  // namespace fedsz::lossy

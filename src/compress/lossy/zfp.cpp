// ZFP analogue (Lindstrom 2014, transform-based model): 4-sample 1-D blocks
// are aligned to a per-block common exponent, converted to 30-bit fixed
// point, run through ZFP's orthogonal lifting transform, mapped to
// negabinary, and bit-plane coded most-significant plane first with a
// group-significance bit per plane. Rate control is fixed-precision (keep the
// top `precision` bit planes per block) — the mode the paper selects because
// ZFP has no REL bound (Section V-D1); the requested relative bound is mapped
// to an equivalent precision, so the bound is calibrated, not guaranteed
// (strictly_bounded() == false).
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "compress/lossy/lossy.hpp"
#include "util/bitstream.hpp"
#include "util/bytebuffer.hpp"
#include "util/stats.hpp"

namespace fedsz::lossy {

namespace {

constexpr std::size_t kBlockSize = 4;
constexpr std::uint32_t kNegabinaryMask = 0xAAAAAAAAu;
constexpr int kFixedPointBits = 30;
constexpr std::uint8_t kEmptyBlockExponent = 0;  // biased-exponent sentinel

// Modular add/sub: the lifting transform works in Z/2^32 by design (extreme
// fixed-point coefficients wrap), so spell the wraparound out in unsigned
// arithmetic instead of overflowing signed ints.
inline std::int32_t wrap_add(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                   static_cast<std::uint32_t>(b));
}

inline std::int32_t wrap_sub(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) -
                                   static_cast<std::uint32_t>(b));
}

// ZFP's 1-D forward/inverse lifting transform (nearly-orthogonal; the integer
// shifts make it approximately invertible, exact in the retained planes).
void forward_lift(std::int32_t* p) {
  std::int32_t x = p[0], y = p[1], z = p[2], w = p[3];
  x = wrap_add(x, w); x >>= 1; w = wrap_sub(w, x);
  z = wrap_add(z, y); z >>= 1; y = wrap_sub(y, z);
  x = wrap_add(x, z); x >>= 1; z = wrap_sub(z, x);
  w = wrap_add(w, y); w >>= 1; y = wrap_sub(y, w);
  w = wrap_add(w, y >> 1); y = wrap_sub(y, w >> 1);
  p[0] = x; p[1] = y; p[2] = z; p[3] = w;
}

void inverse_lift(std::int32_t* p) {
  std::int32_t x = p[0], y = p[1], z = p[2], w = p[3];
  y = wrap_add(y, w >> 1); w = wrap_sub(w, y >> 1);
  y = wrap_add(y, w); w = wrap_add(w, w); w = wrap_sub(w, y);
  z = wrap_add(z, x); x = wrap_add(x, x); x = wrap_sub(x, z);
  y = wrap_add(y, z); z = wrap_add(z, z); z = wrap_sub(z, y);
  w = wrap_add(w, x); x = wrap_add(x, x); x = wrap_sub(x, w);
  p[0] = x; p[1] = y; p[2] = z; p[3] = w;
}

std::uint32_t int_to_negabinary(std::int32_t v) {
  return (static_cast<std::uint32_t>(v) + kNegabinaryMask) ^ kNegabinaryMask;
}

std::int32_t negabinary_to_int(std::uint32_t v) {
  return static_cast<std::int32_t>((v ^ kNegabinaryMask) - kNegabinaryMask);
}

class ZfpCodec final : public LossyCodec {
 public:
  LossyId id() const override { return LossyId::kZfp; }
  std::string name() const override { return "zfp"; }
  bool strictly_bounded() const override { return false; }

  /// Fixed-precision equivalent of a relative bound: truncating below plane
  /// 32-p leaves error ~2^(3-p) of the block's dynamic range.
  static unsigned precision_for(double relative_bound) {
    const double log_term = std::log2(1.0 / relative_bound);
    const int p = static_cast<int>(std::ceil(log_term)) + 3;
    return static_cast<unsigned>(std::clamp(p, 4, 32));
  }

  Bytes compress(FloatSpan data, const ErrorBound& bound) const override {
    require_finite(data, name());
    bound.validate();
    double rel = bound.value;
    if (bound.mode == BoundMode::kAbsolute) {
      const auto s = stats::summarize(data);
      // Degenerate ranges (constant or single-element input) fall back to
      // the magnitude scale so the precision mapping stays meaningful.
      double scale = s.range();
      if (scale <= 0.0) scale = std::max(std::fabs(s.min), std::fabs(s.max));
      rel = scale > 0.0 ? bound.value / scale : 1.0;
    }
    const unsigned precision = precision_for(rel);

    ByteWriter out;
    out.put_varint(data.size());
    out.put_u8(static_cast<std::uint8_t>(precision));
    if (data.empty()) return out.finish();

    BitWriter bw;
    const std::size_t n_blocks = (data.size() + kBlockSize - 1) / kBlockSize;
    for (std::size_t b = 0; b < n_blocks; ++b) {
      const std::size_t begin = b * kBlockSize;
      const std::size_t len = std::min(kBlockSize, data.size() - begin);
      float block[kBlockSize];
      for (std::size_t i = 0; i < kBlockSize; ++i)
        block[i] = data[begin + std::min(i, len - 1)];  // pad tail blocks

      float max_abs = 0.0f;
      for (const float v : block) max_abs = std::max(max_abs, std::fabs(v));
      if (max_abs == 0.0f) {
        bw.write(kEmptyBlockExponent, 8);
        continue;
      }
      int emax;
      std::frexp(max_abs, &emax);  // max_abs in [2^(emax-1), 2^emax)
      const int biased = std::clamp(emax + 128, 1, 255);
      bw.write(static_cast<std::uint32_t>(biased), 8);
      emax = biased - 128;

      std::int32_t q[kBlockSize];
      for (std::size_t i = 0; i < kBlockSize; ++i)
        q[i] = static_cast<std::int32_t>(
            std::lround(std::ldexp(static_cast<double>(block[i]),
                                   kFixedPointBits - emax)));
      forward_lift(q);
      std::uint32_t nb[kBlockSize];
      for (std::size_t i = 0; i < kBlockSize; ++i)
        nb[i] = int_to_negabinary(q[i]);

      // Bit-plane coding, MSB first, with a per-plane group-significance bit.
      bool significant[kBlockSize] = {false, false, false, false};
      unsigned n_sig = 0;
      for (unsigned plane = 0; plane < precision; ++plane) {
        const unsigned bit_index = 31 - plane;
        for (std::size_t i = 0; i < kBlockSize; ++i)
          if (significant[i]) bw.write_bit((nb[i] >> bit_index) & 1u);
        if (n_sig == kBlockSize) continue;
        bool any_new = false;
        for (std::size_t i = 0; i < kBlockSize; ++i)
          if (!significant[i] && ((nb[i] >> bit_index) & 1u)) any_new = true;
        bw.write_bit(any_new);
        if (!any_new) continue;
        for (std::size_t i = 0; i < kBlockSize; ++i) {
          if (significant[i]) continue;
          const bool bit = (nb[i] >> bit_index) & 1u;
          bw.write_bit(bit);
          if (bit) {
            significant[i] = true;
            ++n_sig;
          }
        }
      }
    }
    out.put_bytes({bw.finish()});
    return out.finish();
  }

  std::vector<float> decompress(ByteSpan stream) const override {
    ByteReader r(stream);
    const auto n = static_cast<std::size_t>(r.get_varint());
    const unsigned precision = r.get_u8();
    std::vector<float> out;
    if (n == 0) return out;
    if (precision < 1 || precision > 32)
      throw CorruptStream("zfp: invalid precision");
    // Advisory only — clamp so a corrupt element count cannot force a huge
    // up-front allocation; the block loop grows the vector as data arrives.
    out.reserve(std::min(n, r.remaining()));

    ByteSpan payload = r.get_bytes(r.remaining());
    BitReader br(payload);
    const std::size_t n_blocks = (n + kBlockSize - 1) / kBlockSize;
    for (std::size_t b = 0; b < n_blocks; ++b) {
      const std::size_t begin = b * kBlockSize;
      const std::size_t len = std::min(kBlockSize, n - begin);
      const auto biased = static_cast<std::uint32_t>(br.read(8));
      if (biased == kEmptyBlockExponent) {
        out.insert(out.end(), len, 0.0f);
        continue;
      }
      const int emax = static_cast<int>(biased) - 128;
      std::uint32_t nb[kBlockSize] = {0, 0, 0, 0};
      bool significant[kBlockSize] = {false, false, false, false};
      unsigned n_sig = 0;
      for (unsigned plane = 0; plane < precision; ++plane) {
        const unsigned bit_index = 31 - plane;
        for (std::size_t i = 0; i < kBlockSize; ++i)
          if (significant[i] && br.read_bit())
            nb[i] |= (1u << bit_index);
        if (n_sig == kBlockSize) continue;
        if (!br.read_bit()) continue;
        for (std::size_t i = 0; i < kBlockSize; ++i) {
          if (significant[i]) continue;
          if (br.read_bit()) {
            nb[i] |= (1u << bit_index);
            significant[i] = true;
            ++n_sig;
          }
        }
      }
      std::int32_t q[kBlockSize];
      for (std::size_t i = 0; i < kBlockSize; ++i)
        q[i] = negabinary_to_int(nb[i]);
      inverse_lift(q);
      for (std::size_t i = 0; i < len; ++i)
        out.push_back(static_cast<float>(
            std::ldexp(static_cast<double>(q[i]), emax - kFixedPointBits)));
    }
    return out;
  }
};

}  // namespace

const LossyCodec& zfp_codec_instance() {
  static const ZfpCodec codec;
  return codec;
}

}  // namespace fedsz::lossy

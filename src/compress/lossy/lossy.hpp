// Error-bounded lossy compressor (EBLC) suite: from-scratch analogues of the
// four compressors the paper characterizes (Section II-A, Table I), one per
// classic compression model:
//
//   SZ2  prediction-based: blockwise Lorenzo/linear-regression hybrid
//        prediction, error-bounded quantization, Huffman + LZ back end
//   SZ3  prediction-based: multi-level spline interpolation prediction
//        (no stored regression coefficients), same quantization back end
//   SZx  bit-wise: constant-block detection + fixed-point bit truncation,
//        designed for speed
//   ZFP  transform-based: 4-sample blocks, orthogonal lifting transform,
//        negabinary bit-plane coding, fixed-precision rate control
//
// All compressed buffers are self-contained (length, resolved epsilon and
// codec parameters embedded). SZ2/SZ3/SZx guarantee max|x - x'| <= epsilon
// (strictly_bounded() == true); ZFP's fixed-precision mode is calibrated to
// the requested bound but not pointwise-guaranteed, matching the real tool's
// lack of a REL mode (Section V-D1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compress/lossy/error_bound.hpp"
#include "util/common.hpp"

namespace fedsz::lossy {

enum class LossyId : std::uint8_t {
  kSz2 = 1,
  kSz3 = 2,
  kSzx = 3,
  kZfp = 4,
};

class LossyCodec {
 public:
  virtual ~LossyCodec() = default;
  virtual LossyId id() const = 0;
  virtual std::string name() const = 0;
  /// True if every reconstructed element is guaranteed within epsilon.
  virtual bool strictly_bounded() const = 0;

  /// Compress. Input must be finite (NaN/Inf rejected with InvalidArgument).
  virtual Bytes compress(FloatSpan data, const ErrorBound& bound) const = 0;
  /// Arena-backed variant: produces bytes identical to compress() into
  /// `out` (contents replaced, capacity reused), drawing working buffers
  /// from the calling thread's EncodeArena. The hot codecs (SZ2/SZ3/SZx)
  /// override this allocation-free; the default copies through compress().
  virtual void compress_into(FloatSpan data, const ErrorBound& bound,
                             Bytes& out) const;
  /// Decompress a buffer produced by the same codec.
  virtual std::vector<float> decompress(ByteSpan data) const = 0;
};

// Registry access. Codec instances are stateless immutable singletons:
// lookups and compress()/decompress() calls are safe from any number of
// threads concurrently, which is what lets the chunked FedSZ pipeline share
// one codec across all pool workers.
const LossyCodec& lossy_codec(LossyId id);
const LossyCodec& lossy_codec(const std::string& name);
std::vector<const LossyCodec*> all_lossy_codecs();

/// True when `raw` is a registered LossyId value (stream validation and
/// randomized-test id sampling).
bool is_lossy_id(std::uint8_t raw);

/// Shared input validation: throws InvalidArgument on non-finite values.
void require_finite(FloatSpan data, const std::string& codec_name);

}  // namespace fedsz::lossy

// deflate-family analogue backing both the zlib-like and gzip-like registry
// entries: LZ77 (32 KiB window, min match 3) with the token stream coded by
// two canonical Huffman alphabets — a unified literal/length alphabet (0-255
// literals, 256 end-of-block, 257+ length buckets with extra bits) and a
// distance alphabet (30 buckets with extra bits), the deflate design. The two
// registry entries differ only in match-finder effort, which is also how
// zlib and gzip differ in practice.
#include <algorithm>
#include <array>

#include "compress/lossless/huffman.hpp"
#include "compress/lossless/lossless.hpp"
#include "compress/lossless/lz77.hpp"
#include "util/bitstream.hpp"
#include "util/bytebuffer.hpp"

namespace fedsz::lossless {

namespace {

struct Bucket {
  std::uint32_t base;
  unsigned extra_bits;
};

/// Length buckets for match lengths 3..258 (deflate-style geometry).
const std::vector<Bucket>& length_buckets() {
  static const std::vector<Bucket> buckets = [] {
    std::vector<Bucket> b;
    for (std::uint32_t len = 3; len <= 10; ++len) b.push_back({len, 0});
    std::uint32_t base = 11;
    for (unsigned e = 1; e <= 5; ++e) {
      for (int k = 0; k < 4; ++k) {
        b.push_back({base, e});
        base += 1u << e;
      }
    }
    return b;  // last bucket: base 227, 5 extra bits -> covers up to 258
  }();
  return buckets;
}

/// Distance buckets for offsets 1..32768.
const std::vector<Bucket>& distance_buckets() {
  static const std::vector<Bucket> buckets = [] {
    std::vector<Bucket> b;
    for (std::uint32_t d = 1; d <= 4; ++d) b.push_back({d, 0});
    std::uint32_t base = 5;
    for (unsigned e = 1; e <= 13; ++e) {
      for (int k = 0; k < 2; ++k) {
        b.push_back({base, e});
        base += 1u << e;
      }
    }
    return b;
  }();
  return buckets;
}

std::size_t bucket_for(const std::vector<Bucket>& buckets, std::uint32_t v) {
  // Largest bucket whose base <= v.
  std::size_t lo = 0, hi = buckets.size();
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if (buckets[mid].base <= v)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

constexpr std::uint32_t kEndOfBlock = 256;
constexpr std::uint32_t kLengthCodeBase = 257;
constexpr std::uint8_t kModeRaw = 0;
constexpr std::uint8_t kModeCompressed = 1;

// Per-thread working buffers, reset (not freed) between compress calls —
// same pattern as ZstdScratch so the chunked pipeline's steady state stays
// allocation-free. Both registry entries (zlib, gzip) share one scratch per
// thread; the codebooks are rebuilt in place per call.
struct DeflateScratch {
  std::vector<LzSequence> seqs;
  std::vector<std::uint32_t> litlen_syms, dist_syms;
  HuffmanCodebook litlen_book, dist_book;
  HuffmanWorkspace hws;
  BitWriter bits;
  ByteWriter body;
  ByteWriter framed;  // full frame for the compress_into path
};

DeflateScratch& t_scratch() {
  static thread_local DeflateScratch scratch;
  return scratch;
}

class DeflateLikeCodec final : public LosslessCodec {
 public:
  DeflateLikeCodec(LosslessId id, std::string name, unsigned max_chain)
      : id_(id), name_(std::move(name)), max_chain_(max_chain) {}

  LosslessId id() const override { return id_; }
  std::string name() const override { return name_; }

  Bytes compress(ByteSpan data) const override {
    ByteWriter w;
    encode_frame(data, w);
    return w.finish();
  }

  void compress_into(ByteSpan data, Bytes& out) const override {
    ByteWriter& w = t_scratch().framed;
    w.reset();
    encode_frame(data, w);
    const ByteSpan frame = w.view();
    out.assign(frame.begin(), frame.end());
  }

 private:
  void encode_frame(ByteSpan data, ByteWriter& w) const {
    w.put_varint(data.size());
    if (data.empty()) {
      w.put_u8(kModeRaw);
      return;
    }
    LzParams params;
    params.window_log = 15;  // 32 KiB, the deflate window
    params.min_match = 3;
    params.max_match = 258;
    params.max_chain = max_chain_;
    params.lazy = true;
    DeflateScratch& s = t_scratch();
    lz77_parse(data, params, s.seqs);

    // Gather symbol statistics for the two alphabets.
    std::vector<std::uint32_t>& litlen_syms = s.litlen_syms;
    std::vector<std::uint32_t>& dist_syms = s.dist_syms;
    litlen_syms.clear();
    dist_syms.clear();
    for (const LzSequence& seq : s.seqs) {
      for (std::uint32_t i = 0; i < seq.literal_len; ++i)
        litlen_syms.push_back(data[seq.literal_start + i]);
      if (seq.match_len > 0) {
        litlen_syms.push_back(
            kLengthCodeBase +
            static_cast<std::uint32_t>(
                bucket_for(length_buckets(), seq.match_len)));
        dist_syms.push_back(static_cast<std::uint32_t>(
            bucket_for(distance_buckets(), seq.match_offset)));
      }
    }
    litlen_syms.push_back(kEndOfBlock);

    s.litlen_book.rebuild_from_symbols(litlen_syms, s.hws);
    s.dist_book.rebuild_from_symbols(dist_syms, s.hws);

    ByteWriter& body = s.body;
    body.reset();
    s.litlen_book.write_table(body);
    s.dist_book.write_table(body);
    BitWriter& bits = s.bits;
    bits.reset();
    for (const LzSequence& seq : s.seqs) {
      for (std::uint32_t i = 0; i < seq.literal_len; ++i)
        s.litlen_book.encode(bits, data[seq.literal_start + i]);
      if (seq.match_len > 0) {
        const std::size_t lb = bucket_for(length_buckets(), seq.match_len);
        s.litlen_book.encode(bits,
                             kLengthCodeBase + static_cast<std::uint32_t>(lb));
        bits.write(seq.match_len - length_buckets()[lb].base,
                   length_buckets()[lb].extra_bits);
        const std::size_t db = bucket_for(distance_buckets(), seq.match_offset);
        s.dist_book.encode(bits, static_cast<std::uint32_t>(db));
        bits.write(seq.match_offset - distance_buckets()[db].base,
                   distance_buckets()[db].extra_bits);
      }
    }
    s.litlen_book.encode(bits, kEndOfBlock);
    body.put_blob(bits.finish_view());

    const ByteSpan body_bytes = body.view();
    if (body_bytes.size() >= data.size()) {
      w.put_u8(kModeRaw);
      w.put_bytes(data);
    } else {
      w.put_u8(kModeCompressed);
      w.put_bytes(body_bytes);
    }
  }

 public:

  Bytes decompress(ByteSpan data) const override {
    ByteReader r(data);
    const auto raw_size = static_cast<std::size_t>(r.get_varint());
    const std::uint8_t mode = r.get_u8();
    if (mode == kModeRaw) {
      ByteSpan raw = r.get_bytes(raw_size);
      return Bytes(raw.begin(), raw.end());
    }
    if (mode != kModeCompressed)
      throw CorruptStream("deflate-like: unknown mode byte");
    const HuffmanCodebook litlen_book = HuffmanCodebook::read_table(r);
    const HuffmanCodebook dist_book = HuffmanCodebook::read_table(r);
    const Bytes payload = r.get_blob();
    BitReader bits({payload.data(), payload.size()});
    Bytes out;
    out.reserve(raw_size);
    while (true) {
      const std::uint32_t sym = litlen_book.decode(bits);
      if (sym < 256) {
        out.push_back(static_cast<std::uint8_t>(sym));
        continue;
      }
      if (sym == kEndOfBlock) break;
      const std::size_t lb = sym - kLengthCodeBase;
      if (lb >= length_buckets().size())
        throw CorruptStream("deflate-like: bad length code");
      const std::uint32_t len =
          length_buckets()[lb].base +
          static_cast<std::uint32_t>(
              bits.read(length_buckets()[lb].extra_bits));
      const std::size_t db = dist_book.decode(bits);
      if (db >= distance_buckets().size())
        throw CorruptStream("deflate-like: bad distance code");
      const std::uint32_t dist =
          distance_buckets()[db].base +
          static_cast<std::uint32_t>(
              bits.read(distance_buckets()[db].extra_bits));
      if (dist > out.size())
        throw CorruptStream("deflate-like: distance out of range");
      const std::size_t from = out.size() - dist;
      for (std::uint32_t i = 0; i < len; ++i) out.push_back(out[from + i]);
    }
    if (out.size() != raw_size)
      throw CorruptStream("deflate-like: size mismatch");
    return out;
  }

 private:
  LosslessId id_;
  std::string name_;
  unsigned max_chain_;
};

}  // namespace

const LosslessCodec& zlib_codec_instance() {
  static const DeflateLikeCodec codec(LosslessId::kZlib, "zlib", 48);
  return codec;
}

const LosslessCodec& gzip_codec_instance() {
  static const DeflateLikeCodec codec(LosslessId::kGzip, "gzip", 256);
  return codec;
}

}  // namespace fedsz::lossless

#include "compress/lossless/huffman.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

namespace fedsz::lossless {

namespace {

/// Optimal (unlimited) Huffman code lengths via the classic two-queue/heap
/// construction, then repaired to honor the length limit by a Kraft-sum
/// adjustment (the zlib-style approach: demote overlong codes, then re-pay
/// the Kraft budget greedily). Writes into ws.lengths; every working vector
/// (nodes, heap, DFS stack, repair order) comes from the workspace. The
/// heap mirrors std::priority_queue's push/pop sequence exactly — one
/// push_heap per insert, pop_heap+pop_back per extract — so tie-breaks
/// among equal weights (and therefore tree shapes and emitted bytes) are
/// unchanged from the historical construction.
void huffman_lengths(
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>& freqs,
    unsigned max_len, HuffmanWorkspace& ws) {
  using TreeNode = HuffmanWorkspace::TreeNode;
  const std::size_t n = freqs.size();
  std::vector<unsigned>& lengths = ws.lengths;
  lengths.assign(n, 0);
  if (n == 0) return;
  if (n == 1) {
    lengths[0] = 1;
    return;
  }

  std::vector<TreeNode>& nodes = ws.nodes;
  auto& heap = ws.heap;
  const auto greater = std::greater<>{};
  nodes.clear();
  nodes.reserve(2 * n);
  heap.clear();
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(TreeNode{freqs[i].second, -1, -1, freqs[i].first});
    heap.emplace_back(freqs[i].second, static_cast<int>(i));
    std::push_heap(heap.begin(), heap.end(), greater);
  }
  while (heap.size() > 1) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    const auto [wa, a] = heap.back();
    heap.pop_back();
    std::pop_heap(heap.begin(), heap.end(), greater);
    const auto [wb, b] = heap.back();
    heap.pop_back();
    nodes.push_back(TreeNode{wa + wb, a, b, 0});
    heap.emplace_back(wa + wb, static_cast<int>(nodes.size() - 1));
    std::push_heap(heap.begin(), heap.end(), greater);
  }

  // Depth-first traversal to assign depths to leaves.
  auto& stack = ws.stack;
  stack.clear();
  stack.emplace_back(heap.front().second, 0u);
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const TreeNode& node = nodes[idx];
    if (node.left < 0) {
      lengths[static_cast<std::size_t>(idx)] = std::max(1u, depth);
    } else {
      stack.emplace_back(node.left, depth + 1);
      stack.emplace_back(node.right, depth + 1);
    }
  }

  // Length-limit repair. Kraft units: each code of length L costs
  // 2^(max_len - L); the budget is 2^max_len.
  const std::uint64_t budget = std::uint64_t{1} << max_len;
  std::uint64_t kraft = 0;
  for (auto& len : lengths) {
    if (len > max_len) len = max_len;
    kraft += std::uint64_t{1} << (max_len - len);
  }
  if (kraft > budget) {
    // Demote (lengthen) the cheapest-to-demote codes until feasible.
    // Lengthening a code of length L < max_len frees 2^(max_len-L-1) units.
    std::vector<std::size_t>& order = ws.order;
    order.resize(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    // Prefer lengthening already-long codes (smallest Kraft release, but they
    // belong to the rarest symbols, minimizing cost increase).
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return lengths[a] > lengths[b];
    });
    std::size_t cursor = 0;
    while (kraft > budget) {
      const std::size_t i = order[cursor % n];
      ++cursor;
      if (lengths[i] < max_len) {
        kraft -= std::uint64_t{1} << (max_len - lengths[i] - 1);
        ++lengths[i];
      }
    }
  }
}

/// Reverse the low `len` bits of `code`. The historical encoder emitted
/// code bits MSB-first into the LSB-first stream; writing the reversed
/// code with one buffered BitWriter::write produces identical bytes.
std::uint32_t bit_reverse(std::uint32_t code, unsigned len) {
  std::uint32_t rev = 0;
  for (unsigned b = 0; b < len; ++b) rev = (rev << 1) | ((code >> b) & 1u);
  return rev;
}

}  // namespace

void HuffmanCodebook::rebuild_from_frequencies(
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>& freqs,
    HuffmanWorkspace& ws) {
  if (freqs.size() > 65536)
    throw InvalidArgument("HuffmanCodebook: more than 65536 distinct symbols");
  huffman_lengths(freqs, kMaxCodeLength, ws);
  std::vector<std::pair<std::uint32_t, unsigned>>& symbol_lengths =
      ws.symbol_lengths;
  symbol_lengths.clear();
  symbol_lengths.reserve(freqs.size());
  for (std::size_t i = 0; i < freqs.size(); ++i)
    symbol_lengths.emplace_back(freqs[i].first, ws.lengths[i]);
  build_canonical_inplace(symbol_lengths);
}

void HuffmanCodebook::rebuild_from_symbols(
    std::span<const std::uint32_t> symbols, HuffmanWorkspace& ws) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>>& freqs = ws.freqs;
  freqs.clear();
  std::uint32_t max_symbol = 0;
  for (const std::uint32_t s : symbols) max_symbol = std::max(max_symbol, s);
  if (!symbols.empty() && max_symbol < kDenseSymbolLimit) {
    // Dense counting: one pass over a symbol-indexed array, then emit in
    // ascending symbol order — the same (symbol-sorted) frequency vector
    // the map + sort path produces, without the per-symbol hashing.
    std::vector<std::uint64_t>& counts = ws.counts;
    counts.assign(static_cast<std::size_t>(max_symbol) + 1, 0);
    for (const std::uint32_t s : symbols) ++counts[s];
    for (std::uint32_t s = 0; s <= max_symbol; ++s)
      if (counts[s] != 0) freqs.emplace_back(s, counts[s]);
  } else {
    std::unordered_map<std::uint32_t, std::uint64_t> counts;
    counts.reserve(1024);
    for (const std::uint32_t s : symbols) ++counts[s];
    freqs.assign(counts.begin(), counts.end());
    // Deterministic table construction regardless of hash iteration order.
    std::sort(freqs.begin(), freqs.end());
  }
  rebuild_from_frequencies(freqs, ws);
}

HuffmanCodebook HuffmanCodebook::from_frequencies(
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>& freqs) {
  HuffmanWorkspace ws;
  HuffmanCodebook book;
  book.rebuild_from_frequencies(freqs, ws);
  return book;
}

HuffmanCodebook HuffmanCodebook::from_symbols(
    std::span<const std::uint32_t> symbols) {
  HuffmanWorkspace ws;
  HuffmanCodebook book;
  book.rebuild_from_symbols(symbols, ws);
  return book;
}

void HuffmanCodebook::build_canonical(
    std::vector<std::pair<std::uint32_t, unsigned>> symbol_lengths) {
  build_canonical_inplace(symbol_lengths);
}

void HuffmanCodebook::build_canonical_inplace(
    std::vector<std::pair<std::uint32_t, unsigned>>& symbol_lengths) {
  std::sort(symbol_lengths.begin(), symbol_lengths.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  count_.fill(0);
  symbols_.clear();
  symbols_.reserve(symbol_lengths.size());
  for (const auto& [symbol, length] : symbol_lengths) {
    if (length == 0 || length > kMaxCodeLength)
      throw InvalidArgument("HuffmanCodebook: invalid code length");
    ++count_[length];
    symbols_.push_back(symbol);
  }
  // Canonical first codes per length.
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  std::uint64_t kraft = 0;
  for (unsigned len = 1; len <= kMaxCodeLength; ++len) {
    code <<= 1;
    first_code_[len] = code;
    first_index_[len] = index;
    code += count_[len];
    index += count_[len];
    kraft += static_cast<std::uint64_t>(count_[len])
             << (kMaxCodeLength - len);
  }
  if (kraft > (std::uint64_t{1} << kMaxCodeLength))
    throw CorruptStream("HuffmanCodebook: oversubscribed code lengths");
  // Encoder tables: packed (bit-reversed code << 5 | length) per symbol.
  std::uint32_t max_symbol = 0;
  for (const std::uint32_t s : symbols_) max_symbol = std::max(max_symbol, s);
  const bool dense = !symbols_.empty() && max_symbol < kDenseSymbolLimit;
  enc_dense_.clear();
  enc_sparse_.clear();
  if (dense) enc_dense_.assign(static_cast<std::size_t>(max_symbol) + 1, 0);
  std::size_t i = 0;
  for (unsigned len = 1; len <= kMaxCodeLength; ++len) {
    for (std::uint32_t k = 0; k < count_[len]; ++k, ++i) {
      const std::uint32_t packed =
          (bit_reverse(first_code_[len] + k, len) << 5) | len;
      if (dense) {
        enc_dense_[symbols_[i]] = packed;
      } else {
        enc_sparse_.emplace_back(symbols_[i], packed);
      }
    }
  }
  if (!dense) std::sort(enc_sparse_.begin(), enc_sparse_.end());
  build_decode_table();
}

void HuffmanCodebook::build_decode_table() {
  unsigned max_len = 0;
  for (unsigned len = 1; len <= kMaxCodeLength; ++len)
    if (count_[len] != 0) max_len = len;
  root_bits_ = 0;
  dec_table_.clear();
  if (max_len == 0) return;
  root_bits_ = std::min(max_len, kDecodeRootBits);
  dec_table_.assign(std::size_t{1} << root_bits_, DecEntry{0, 0});
  // A code of length L <= root_bits_ owns every table index whose low L
  // bits equal its bit-reversed value (the next L stream bits). Indices
  // left at len 0 route to the canonical walk: either a longer code's
  // prefix or an invalid pattern.
  std::size_t i = 0;
  for (unsigned len = 1; len <= kMaxCodeLength; ++len) {
    for (std::uint32_t k = 0; k < count_[len]; ++k, ++i) {
      if (len > root_bits_) continue;
      const std::uint32_t rev = bit_reverse(first_code_[len] + k, len);
      for (std::size_t idx = rev; idx < dec_table_.size();
           idx += std::size_t{1} << len) {
        dec_table_[idx] = DecEntry{symbols_[i], static_cast<std::uint8_t>(len)};
      }
    }
  }
}

std::uint32_t HuffmanCodebook::find_entry(std::uint32_t symbol) const {
  if (!enc_dense_.empty())
    return symbol < enc_dense_.size() ? enc_dense_[symbol] : 0;
  const auto it = std::lower_bound(
      enc_sparse_.begin(), enc_sparse_.end(), symbol,
      [](const auto& entry, std::uint32_t s) { return entry.first < s; });
  return it != enc_sparse_.end() && it->first == symbol ? it->second : 0;
}

void HuffmanCodebook::write_table(ByteWriter& out) const {
  out.put_varint(symbols_.size());
  std::size_t i = 0;
  for (unsigned len = 1; len <= kMaxCodeLength; ++len) {
    for (std::uint32_t k = 0; k < count_[len]; ++k, ++i) {
      out.put_varint(symbols_[i]);
      out.put_u8(static_cast<std::uint8_t>(len));
    }
  }
}

HuffmanCodebook HuffmanCodebook::read_table(ByteReader& in) {
  const std::uint64_t n = in.get_varint();
  if (n > 65536) throw CorruptStream("HuffmanCodebook: table too large");
  std::vector<std::pair<std::uint32_t, unsigned>> symbol_lengths;
  symbol_lengths.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto symbol = static_cast<std::uint32_t>(in.get_varint());
    const unsigned length = in.get_u8();
    // Stream-originated, so reject here as corruption; build_canonical's
    // InvalidArgument is reserved for caller bugs.
    if (length == 0 || length > kMaxCodeLength)
      throw CorruptStream("HuffmanCodebook: invalid code length in stream");
    symbol_lengths.emplace_back(symbol, length);
  }
  HuffmanCodebook book;
  book.build_canonical(std::move(symbol_lengths));
  return book;
}

void HuffmanCodebook::encode(BitWriter& out, std::uint32_t symbol) const {
  const std::uint32_t entry = find_entry(symbol);
  if (entry == 0)
    throw InvalidArgument("HuffmanCodebook: symbol not in codebook");
  out.write(entry >> 5, entry & 31u);
}

void HuffmanCodebook::encode_all(std::span<const std::uint32_t> symbols,
                                 BitWriter& out) const {
  if (enc_dense_.empty()) {
    for (const std::uint32_t s : symbols) encode(out, s);
    return;
  }
  const std::uint32_t* table = enc_dense_.data();
  const auto limit = static_cast<std::uint32_t>(enc_dense_.size());
  for (const std::uint32_t s : symbols) {
    const std::uint32_t entry = s < limit ? table[s] : 0;
    if (entry == 0)
      throw InvalidArgument("HuffmanCodebook: symbol not in codebook");
    out.write(entry >> 5, entry & 31u);
  }
}

std::uint32_t HuffmanCodebook::decode(BitReader& in) const {
  if (root_bits_ != 0) {
    const DecEntry e = dec_table_[in.peek(root_bits_)];
    if (e.len != 0 && e.len <= in.bits_left()) {
      in.skip(e.len);
      return e.symbol;
    }
  }
  // Long codes, corrupt prefixes, or the zero-padded tail of the buffer:
  // the canonical bit-by-bit length walk (the historical decoder, with its
  // exact CorruptStream semantics).
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= kMaxCodeLength; ++len) {
    code = (code << 1) | static_cast<std::uint32_t>(in.read_bit());
    if (count_[len] != 0 && code >= first_code_[len] &&
        code - first_code_[len] < count_[len]) {
      return symbols_[first_index_[len] + (code - first_code_[len])];
    }
  }
  throw CorruptStream("HuffmanCodebook: invalid code in stream");
}

unsigned HuffmanCodebook::code_length(std::uint32_t symbol) const {
  return find_entry(symbol) & 31u;
}

std::size_t HuffmanWorkspace::capacity_bytes() const {
  return freqs.capacity() * sizeof(freqs[0]) +
         counts.capacity() * sizeof(counts[0]) +
         lengths.capacity() * sizeof(lengths[0]) +
         nodes.capacity() * sizeof(nodes[0]) +
         heap.capacity() * sizeof(heap[0]) +
         stack.capacity() * sizeof(stack[0]) +
         order.capacity() * sizeof(order[0]) +
         symbol_lengths.capacity() * sizeof(symbol_lengths[0]);
}

void huffman_encode(std::span<const std::uint32_t> symbols, ByteWriter& out,
                    BitWriter& bits, HuffmanWorkspace& ws) {
  out.put_varint(symbols.size());
  if (symbols.empty()) return;
  ws.book.rebuild_from_symbols(symbols, ws);
  ws.book.write_table(out);
  bits.reset();
  ws.book.encode_all(symbols, bits);
  out.put_blob(bits.finish_view());
  bits.reset();
}

void huffman_encode(std::span<const std::uint32_t> symbols, ByteWriter& out,
                    BitWriter& bits) {
  // Callers without an arena still get pooled construction: the workspace
  // (codebook tables included) is thread-local, so steady-state encodes
  // reuse grown capacity exactly like the 4-arg overload.
  static thread_local HuffmanWorkspace ws;
  huffman_encode(symbols, out, bits, ws);
}

Bytes huffman_encode(std::span<const std::uint32_t> symbols) {
  ByteWriter out;
  BitWriter bits;
  huffman_encode(symbols, out, bits);
  return out.finish();
}

void huffman_decode(ByteSpan data, std::vector<std::uint32_t>& out) {
  out.clear();
  ByteReader in(data);
  const std::uint64_t count = in.get_varint();
  if (count == 0) return;
  const HuffmanCodebook book = HuffmanCodebook::read_table(in);
  const ByteSpan payload = in.get_blob_view();
  BitReader bits(payload);
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(book.decode(bits));
}

std::vector<std::uint32_t> huffman_decode(ByteSpan data) {
  std::vector<std::uint32_t> symbols;
  huffman_decode(data, symbols);
  return symbols;
}

}  // namespace fedsz::lossless

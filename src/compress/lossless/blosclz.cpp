// blosc-lz analogue: optional byte-shuffle (typesize 4, matching the float32
// payloads FedSZ feeds it) followed by an LZ4-style token format with no
// entropy coding. Chosen for exactly the property Table II reports: an order
// of magnitude faster than deflate-family codecs while the shuffle keeps its
// ratio competitive on float arrays.
#include "compress/lossless/lossless.hpp"

#include "compress/lossless/lz77.hpp"
#include "util/bytebuffer.hpp"

namespace fedsz::lossless {

namespace {

constexpr std::uint8_t kFlagShuffled = 0x01;
constexpr std::uint8_t kFlagStoredRaw = 0x02;

Bytes encode_lz4_style(ByteSpan data, const std::vector<LzSequence>& seqs) {
  ByteWriter w;
  for (const LzSequence& seq : seqs) {
    const std::uint32_t lit = seq.literal_len;
    const bool has_match = seq.match_len > 0;
    const std::uint32_t mlen = has_match ? seq.match_len - 4 : 0;
    const std::uint8_t token =
        static_cast<std::uint8_t>((std::min<std::uint32_t>(lit, 15) << 4) |
                                  std::min<std::uint32_t>(mlen, 15));
    w.put_u8(token);
    if (lit >= 15) {
      std::uint32_t rest = lit - 15;
      while (rest >= 255) {
        w.put_u8(255);
        rest -= 255;
      }
      w.put_u8(static_cast<std::uint8_t>(rest));
    }
    w.put_bytes(data.subspan(seq.literal_start, seq.literal_len));
    if (has_match) {
      w.put_u16(static_cast<std::uint16_t>(seq.match_offset - 1));
      if (mlen >= 15) {
        std::uint32_t rest = mlen - 15;
        while (rest >= 255) {
          w.put_u8(255);
          rest -= 255;
        }
        w.put_u8(static_cast<std::uint8_t>(rest));
      }
    }
  }
  return w.finish();
}

Bytes decode_lz4_style(ByteReader& r, std::size_t raw_size) {
  Bytes out;
  out.reserve(raw_size);
  while (out.size() < raw_size) {
    const std::uint8_t token = r.get_u8();
    std::uint32_t lit = token >> 4;
    if (lit == 15) {
      std::uint8_t b;
      do {
        b = r.get_u8();
        lit += b;
      } while (b == 255);
    }
    ByteSpan literals = r.get_bytes(lit);
    out.insert(out.end(), literals.begin(), literals.end());
    if (out.size() >= raw_size) break;  // final sequence: literals only
    const std::uint32_t offset = static_cast<std::uint32_t>(r.get_u16()) + 1;
    std::uint32_t mlen = (token & 0x0F) + 4;
    if ((token & 0x0F) == 15) {
      std::uint8_t b;
      do {
        b = r.get_u8();
        mlen += b;
      } while (b == 255);
    }
    if (offset > out.size())
      throw CorruptStream("blosclz: match offset out of range");
    const std::size_t from = out.size() - offset;
    for (std::uint32_t i = 0; i < mlen; ++i) out.push_back(out[from + i]);
  }
  if (out.size() != raw_size) throw CorruptStream("blosclz: size mismatch");
  return out;
}

class BloscLzCodec final : public LosslessCodec {
 public:
  LosslessId id() const override { return LosslessId::kBloscLz; }
  std::string name() const override { return "blosc-lz"; }

  Bytes compress(ByteSpan data) const override {
    ByteWriter header;
    std::uint8_t flags = 0;
    Bytes shuffled;
    ByteSpan payload = data;
    if (data.size() >= 8 && data.size() % 4 == 0) {
      shuffled = shuffle_bytes(data, 4);
      payload = {shuffled.data(), shuffled.size()};
      flags |= kFlagShuffled;
    }
    LzParams params;
    params.window_log = 16;
    params.min_match = 4;
    params.max_chain = 8;
    params.lazy = false;
    const auto seqs = lz77_parse(payload, params);
    Bytes body = encode_lz4_style(payload, seqs);
    if (body.size() >= data.size()) {  // incompressible: store original
      header.put_u8(kFlagStoredRaw);
      header.put_varint(data.size());
      header.put_bytes(data);
      return header.finish();
    }
    header.put_u8(flags);
    header.put_varint(data.size());
    header.put_bytes({body.data(), body.size()});
    return header.finish();
  }

  Bytes decompress(ByteSpan data) const override {
    ByteReader r(data);
    const std::uint8_t flags = r.get_u8();
    const auto raw_size = static_cast<std::size_t>(r.get_varint());
    if (flags & kFlagStoredRaw) {
      ByteSpan raw = r.get_bytes(raw_size);
      return Bytes(raw.begin(), raw.end());
    }
    Bytes out = decode_lz4_style(r, raw_size);
    if (flags & kFlagShuffled) out = unshuffle_bytes(out, 4);
    return out;
  }
};

}  // namespace

const LosslessCodec& blosclz_codec_instance() {
  static const BloscLzCodec codec;
  return codec;
}

}  // namespace fedsz::lossless

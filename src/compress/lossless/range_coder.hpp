// Adaptive binary range coder (LZMA-style), the entropy back end of the
// xz-like codec: 32-bit range, 11-bit adaptive bit probabilities, carry
// propagation through a cache byte. Also provides bit-tree helpers for
// encoding fixed-width fields with per-node adaptive contexts.
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace fedsz::lossless {

/// Adaptive probability state for one binary context. 11-bit fixed point:
/// value/2048 is the probability of bit 0.
struct BitProb {
  std::uint16_t value = 1024;  // p(0) = 0.5 initially
};

class RangeEncoder {
 public:
  void encode_bit(BitProb& prob, unsigned bit);
  /// Encode `count` bits of `value` (MSB first) at fixed probability 1/2.
  void encode_direct(std::uint32_t value, unsigned count);
  /// Bit-tree encode: `probs` must hold (1 << count) contexts.
  void encode_tree(std::vector<BitProb>& probs, unsigned count,
                   std::uint32_t value);

  /// Flush and return the byte stream. The encoder is consumed.
  Bytes finish();

 private:
  void shift_low();

  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint8_t cache_ = 0;
  std::uint64_t cache_size_ = 1;
  Bytes out_;
};

class RangeDecoder {
 public:
  explicit RangeDecoder(ByteSpan data);

  unsigned decode_bit(BitProb& prob);
  std::uint32_t decode_direct(unsigned count);
  std::uint32_t decode_tree(std::vector<BitProb>& probs, unsigned count);

 private:
  std::uint8_t next_byte();
  void normalize();

  ByteSpan data_;
  std::size_t pos_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint32_t code_ = 0;
};

}  // namespace fedsz::lossless

#include "compress/lossless/range_coder.hpp"

namespace fedsz::lossless {

namespace {
constexpr std::uint32_t kTopValue = 1u << 24;
constexpr unsigned kProbBits = 11;
constexpr unsigned kMoveBits = 5;
}  // namespace

void RangeEncoder::shift_low() {
  if (static_cast<std::uint32_t>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
    std::uint8_t carry = static_cast<std::uint8_t>(low_ >> 32);
    out_.push_back(static_cast<std::uint8_t>(cache_ + carry));
    while (cache_size_ > 1) {
      out_.push_back(static_cast<std::uint8_t>(0xFF + carry));
      --cache_size_;
    }
    cache_ = static_cast<std::uint8_t>(low_ >> 24);
    cache_size_ = 0;
  }
  ++cache_size_;
  low_ = (low_ << 8) & 0xFFFFFFFFull;
}

void RangeEncoder::encode_bit(BitProb& prob, unsigned bit) {
  const std::uint32_t bound = (range_ >> kProbBits) * prob.value;
  if (bit == 0) {
    range_ = bound;
    prob.value = static_cast<std::uint16_t>(
        prob.value + (((1u << kProbBits) - prob.value) >> kMoveBits));
  } else {
    low_ += bound;
    range_ -= bound;
    prob.value = static_cast<std::uint16_t>(prob.value -
                                            (prob.value >> kMoveBits));
  }
  while (range_ < kTopValue) {
    range_ <<= 8;
    shift_low();
  }
}

void RangeEncoder::encode_direct(std::uint32_t value, unsigned count) {
  for (unsigned i = count; i-- > 0;) {
    range_ >>= 1;
    if ((value >> i) & 1u) low_ += range_;
    while (range_ < kTopValue) {
      range_ <<= 8;
      shift_low();
    }
  }
}

void RangeEncoder::encode_tree(std::vector<BitProb>& probs, unsigned count,
                               std::uint32_t value) {
  std::uint32_t m = 1;
  for (unsigned i = count; i-- > 0;) {
    const unsigned bit = (value >> i) & 1u;
    encode_bit(probs[m], bit);
    m = (m << 1) | bit;
  }
}

Bytes RangeEncoder::finish() {
  for (int i = 0; i < 5; ++i) shift_low();
  return std::move(out_);
}

RangeDecoder::RangeDecoder(ByteSpan data) : data_(data) {
  next_byte();  // skip the encoder's initial cache byte (always 0)
  for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | next_byte();
}

std::uint8_t RangeDecoder::next_byte() {
  // Reads past the flushed tail decode as zero; the caller stops at the
  // recorded raw size, so trailing normalization reads are harmless.
  return pos_ < data_.size() ? data_[pos_++] : 0;
}

void RangeDecoder::normalize() {
  while (range_ < kTopValue) {
    range_ <<= 8;
    code_ = (code_ << 8) | next_byte();
  }
}

unsigned RangeDecoder::decode_bit(BitProb& prob) {
  const std::uint32_t bound = (range_ >> kProbBits) * prob.value;
  unsigned bit;
  if (code_ < bound) {
    range_ = bound;
    prob.value = static_cast<std::uint16_t>(
        prob.value + (((1u << kProbBits) - prob.value) >> kMoveBits));
    bit = 0;
  } else {
    code_ -= bound;
    range_ -= bound;
    prob.value = static_cast<std::uint16_t>(prob.value -
                                            (prob.value >> kMoveBits));
    bit = 1;
  }
  normalize();
  return bit;
}

std::uint32_t RangeDecoder::decode_direct(unsigned count) {
  std::uint32_t result = 0;
  for (unsigned i = 0; i < count; ++i) {
    range_ >>= 1;
    result <<= 1;
    if (code_ >= range_) {
      code_ -= range_;
      result |= 1u;
    }
    normalize();
  }
  return result;
}

std::uint32_t RangeDecoder::decode_tree(std::vector<BitProb>& probs,
                                        unsigned count) {
  std::uint32_t m = 1;
  for (unsigned i = 0; i < count; ++i)
    m = (m << 1) | decode_bit(probs[m]);
  return m - (1u << count);
}

}  // namespace fedsz::lossless

// xz analogue: an LZMA-lite — LZ77 with a 4 MiB window and deep chains, the
// token stream coded with the adaptive binary range coder using contextual
// probabilities (literal bytes conditioned on the previous byte's high bits,
// LZMA-style length coder, offset-slot bit tree plus direct bits). Slowest of
// the suite, best ratio: the xz row of Table II.
#include <bit>

#include "compress/lossless/lossless.hpp"
#include "compress/lossless/lz77.hpp"
#include "compress/lossless/range_coder.hpp"
#include "util/bytebuffer.hpp"

namespace fedsz::lossless {

namespace {

constexpr std::uint8_t kModeRaw = 0;
constexpr std::uint8_t kModeCompressed = 1;
constexpr unsigned kMinMatch = 3;
// Length coder ranges: [0,8) low tree, [8,24) mid tree, [24,24+256) high tree.
constexpr std::uint32_t kLenLowLimit = 8;
constexpr std::uint32_t kLenMidLimit = 24;
constexpr std::uint32_t kMaxEncodedLen = kLenMidLimit + 255;

struct Contexts {
  BitProb is_match;
  std::vector<std::vector<BitProb>> literal;  // [prev byte >> 5][bit tree 256]
  BitProb len_choice1, len_choice2;
  std::vector<BitProb> len_low, len_mid, len_high;
  std::vector<BitProb> offset_slot;

  Contexts()
      : literal(8, std::vector<BitProb>(256)),
        len_low(8),
        len_mid(16),
        len_high(256),
        offset_slot(64) {}
};

/// LZMA-style offset slot: offsets < 4 code as themselves; otherwise the slot
/// stores the bit width and the bit below the MSB, remaining bits go direct.
std::uint32_t offset_slot_for(std::uint32_t off1) {
  if (off1 < 4) return off1;
  const unsigned k = std::bit_width(off1) - 1;
  return (k << 1) | ((off1 >> (k - 1)) & 1u);
}

unsigned slot_direct_bits(std::uint32_t slot) {
  return slot < 4 ? 0 : (slot >> 1) - 1;
}

class XzLikeCodec final : public LosslessCodec {
 public:
  LosslessId id() const override { return LosslessId::kXz; }
  std::string name() const override { return "xz"; }

  Bytes compress(ByteSpan data) const override {
    ByteWriter w;
    w.put_varint(data.size());
    if (data.empty()) {
      w.put_u8(kModeRaw);
      return w.finish();
    }
    LzParams params;
    params.window_log = 22;  // 4 MiB window
    params.min_match = kMinMatch;
    params.max_match = kMinMatch + kMaxEncodedLen - 1;
    params.max_chain = 256;
    params.lazy = true;
    const auto seqs = lz77_parse(data, params);

    RangeEncoder rc;
    Contexts ctx;
    std::size_t cursor = 0;  // number of input bytes represented so far
    for (const LzSequence& seq : seqs) {
      for (std::uint32_t i = 0; i < seq.literal_len; ++i) {
        const std::uint8_t prev = cursor > 0 ? data[cursor - 1] : 0;
        rc.encode_bit(ctx.is_match, 0);
        rc.encode_tree(ctx.literal[prev >> 5], 8, data[cursor]);
        ++cursor;
      }
      if (seq.match_len == 0) continue;
      rc.encode_bit(ctx.is_match, 1);
      const std::uint32_t len2 = seq.match_len - kMinMatch;
      if (len2 < kLenLowLimit) {
        rc.encode_bit(ctx.len_choice1, 0);
        rc.encode_tree(ctx.len_low, 3, len2);
      } else if (len2 < kLenMidLimit) {
        rc.encode_bit(ctx.len_choice1, 1);
        rc.encode_bit(ctx.len_choice2, 0);
        rc.encode_tree(ctx.len_mid, 4, len2 - kLenLowLimit);
      } else {
        rc.encode_bit(ctx.len_choice1, 1);
        rc.encode_bit(ctx.len_choice2, 1);
        rc.encode_tree(ctx.len_high, 8, len2 - kLenMidLimit);
      }
      const std::uint32_t off1 = seq.match_offset - 1;
      const std::uint32_t slot = offset_slot_for(off1);
      rc.encode_tree(ctx.offset_slot, 6, slot);
      const unsigned direct = slot_direct_bits(slot);
      if (direct > 0) rc.encode_direct(off1 & ((1u << direct) - 1), direct);
      cursor += seq.match_len;
    }

    Bytes body = rc.finish();
    if (body.size() >= data.size()) {
      w.put_u8(kModeRaw);
      w.put_bytes(data);
    } else {
      w.put_u8(kModeCompressed);
      w.put_bytes({body.data(), body.size()});
    }
    return w.finish();
  }

  Bytes decompress(ByteSpan data) const override {
    ByteReader r(data);
    const auto raw_size = static_cast<std::size_t>(r.get_varint());
    const std::uint8_t mode = r.get_u8();
    if (mode == kModeRaw) {
      ByteSpan raw = r.get_bytes(raw_size);
      return Bytes(raw.begin(), raw.end());
    }
    if (mode != kModeCompressed)
      throw CorruptStream("xz-like: unknown mode byte");
    ByteSpan body = r.get_bytes(r.remaining());
    RangeDecoder rc(body);
    Contexts ctx;
    Bytes out;
    out.reserve(raw_size);
    while (out.size() < raw_size) {
      if (rc.decode_bit(ctx.is_match) == 0) {
        const std::uint8_t prev = out.empty() ? 0 : out.back();
        out.push_back(static_cast<std::uint8_t>(
            rc.decode_tree(ctx.literal[prev >> 5], 8)));
        continue;
      }
      std::uint32_t len2;
      if (rc.decode_bit(ctx.len_choice1) == 0) {
        len2 = rc.decode_tree(ctx.len_low, 3);
      } else if (rc.decode_bit(ctx.len_choice2) == 0) {
        len2 = kLenLowLimit + rc.decode_tree(ctx.len_mid, 4);
      } else {
        len2 = kLenMidLimit + rc.decode_tree(ctx.len_high, 8);
      }
      const std::uint32_t len = len2 + kMinMatch;
      const std::uint32_t slot = rc.decode_tree(ctx.offset_slot, 6);
      std::uint32_t off1;
      if (slot < 4) {
        off1 = slot;
      } else {
        const unsigned direct = slot_direct_bits(slot);
        const std::uint32_t prefix = 2u | (slot & 1u);
        off1 = (prefix << direct) | rc.decode_direct(direct);
      }
      const std::uint32_t offset = off1 + 1;
      if (offset > out.size())
        throw CorruptStream("xz-like: offset out of range");
      const std::size_t from = out.size() - offset;
      for (std::uint32_t i = 0; i < len && out.size() < raw_size; ++i)
        out.push_back(out[from + i]);
    }
    return out;
  }
};

}  // namespace

const LosslessCodec& xz_codec_instance() {
  static const XzLikeCodec codec;
  return codec;
}

}  // namespace fedsz::lossless

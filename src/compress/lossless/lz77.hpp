// Shared LZ77 match finder. Every lossless codec in the suite is "LZ77 plus a
// different token encoding", exactly as the real blosc-lz / deflate / zstd /
// xz tools are; this module provides the parse they share. Match finding uses
// a hash-head + previous-position chain table; effort is tuned per codec via
// LzParams (chain depth, window size, lazy matching).
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace fedsz::lossless {

/// One parsed sequence: a run of literals copied verbatim from the input,
/// followed by a back-reference match. The final sequence of a parse may have
/// match_len == 0 (trailing literals with no match).
struct LzSequence {
  std::uint32_t literal_start = 0;  // offset of the literal run in the input
  std::uint32_t literal_len = 0;
  std::uint32_t match_len = 0;     // 0 => no match (final sequence only)
  std::uint32_t match_offset = 0;  // distance back from the match position
};

struct LzParams {
  unsigned window_log = 16;   // match offsets < 2^window_log
  unsigned min_match = 4;     // shortest usable match
  unsigned max_match = 1 << 16;
  unsigned max_chain = 32;    // candidates examined per position
  bool lazy = false;          // one-step-lazy matching (better, slower)
};

/// Greedy (optionally lazy) LZ77 parse of `data`.
std::vector<LzSequence> lz77_parse(ByteSpan data, const LzParams& params);

/// Arena variant: fill a caller-owned (reused) sequence buffer instead of
/// allocating a fresh vector per parse.
void lz77_parse(ByteSpan data, const LzParams& params,
                std::vector<LzSequence>& sequences);

/// Rebuild the original buffer from a parse (used by tests and as the shared
/// back end of codec decoders that materialize sequences).
Bytes lz77_reconstruct(ByteSpan source_literals,
                       const std::vector<LzSequence>& sequences,
                       std::size_t expected_size);

/// Byte-transpose ("shuffle") of fixed-size elements: groups byte 0 of every
/// element, then byte 1, ... Dramatically improves LZ/entropy compression of
/// float arrays whose high bytes are similar — the trick that makes blosc-lz
/// competitive with xz on model metadata (Table II).
Bytes shuffle_bytes(ByteSpan data, std::size_t element_size);
Bytes unshuffle_bytes(ByteSpan data, std::size_t element_size);

}  // namespace fedsz::lossless

// Lossless codec suite. Mirrors the five compressors the paper evaluates for
// the metadata/non-weight partition (Table II): blosc-lz, zlib, zstd, gzip,
// xz. Each is a from-scratch implementation occupying the same design point
// (speed vs ratio) as the original tool:
//
//   blosc-lz  byte-shuffle + LZ4-style fast LZ, no entropy stage   (fastest)
//   zlib      LZ77 + canonical-Huffman token coding (deflate-like)
//   gzip      same deflate-like core at a higher effort setting
//   zstd      LZ77 (large window) + separate Huffman streams
//   xz        LZ77 + adaptive binary range coder (LZMA-like)       (best CR)
//
// All codecs produce self-contained buffers (the original size is embedded)
// and fall back to stored-raw framing when compression does not help, so
// compress() never expands the payload by more than a few header bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace fedsz::lossless {

enum class LosslessId : std::uint8_t {
  kBloscLz = 1,
  kZlib = 2,
  kZstd = 3,
  kGzip = 4,
  kXz = 5,
};

class LosslessCodec {
 public:
  virtual ~LosslessCodec() = default;
  virtual LosslessId id() const = 0;
  virtual std::string name() const = 0;
  virtual Bytes compress(ByteSpan data) const = 0;
  /// Arena-backed variant: bytes identical to compress(), written into
  /// `out` (contents replaced, capacity reused). The default copies
  /// through compress(); hot codecs override it to reuse scratch.
  virtual void compress_into(ByteSpan data, Bytes& out) const;
  virtual Bytes decompress(ByteSpan data) const = 0;
};

/// Registry access. Codecs are stateless singletons owned by the registry;
/// lookups and codec calls are thread-safe, so the chunked FedSZ pipeline
/// shares one instance across all pool workers.
const LosslessCodec& lossless_codec(LosslessId id);
const LosslessCodec& lossless_codec(const std::string& name);
std::vector<const LosslessCodec*> all_lossless_codecs();

/// True when `raw` is a registered LosslessId value (stream validation and
/// randomized-test id sampling).
bool is_lossless_id(std::uint8_t raw);

}  // namespace fedsz::lossless

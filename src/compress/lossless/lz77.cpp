#include "compress/lossless/lz77.hpp"

#include <algorithm>
#include <cstring>

namespace fedsz::lossless {

namespace {

constexpr unsigned kHashBits = 16;
constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;

inline std::uint32_t load32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint32_t load24(const std::uint8_t* p) {
  // Same value as load32(p) & 0x00FFFFFF on little-endian, without reading
  // the 4th byte: min_match == 3 callers only guarantee 3 readable bytes.
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16);
}

inline std::uint32_t hash_at(const std::uint8_t* p, unsigned min_match) {
  // Hash 3 bytes when min_match == 3, else 4; multiplicative (Knuth) hash.
  const std::uint32_t v = min_match >= 4 ? load32(p) : load24(p);
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline std::uint32_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                                  std::uint32_t limit) {
  std::uint32_t len = 0;
  while (len + 4 <= limit && load32(a + len) == load32(b + len)) len += 4;
  while (len < limit && a[len] == b[len]) ++len;
  return len;
}

class MatchFinder {
 public:
  // The hash tables are thread-local and reused across parses: head_ is
  // re-filled with kNoPos (every chain starts empty, so stale prev_ entries
  // are unreachable — a chain only contains positions inserted this parse,
  // and insert() writes prev_[pos] before linking pos into its chain),
  // while prev_ only ever grows. This removes the dominant per-parse
  // allocation without changing any parse decision.
  MatchFinder(ByteSpan data, const LzParams& params)
      : data_(data), params_(params), head_(t_head()), prev_(t_prev()) {
    head_.assign(std::size_t{1} << kHashBits, kNoPos);
    if (prev_.size() < data.size()) prev_.resize(data.size());
  }

  struct Match {
    std::uint32_t len = 0;
    std::uint32_t offset = 0;
  };

  /// Best match at `pos`, or len==0.
  Match find(std::uint32_t pos) const {
    Match best;
    if (pos + params_.min_match > data_.size()) return best;
    const std::uint8_t* base = data_.data();
    const std::uint32_t window = std::uint32_t{1} << params_.window_log;
    const std::uint32_t limit = static_cast<std::uint32_t>(
        std::min<std::size_t>(data_.size() - pos, params_.max_match));
    std::uint32_t candidate = head_[hash_at(base + pos, params_.min_match)];
    unsigned chain = params_.max_chain;
    while (candidate != kNoPos && chain-- > 0) {
      if (pos - candidate > window) break;  // chain is ordered by position
      // zlib-style quick reject: a candidate can only beat the current best
      // if it also matches at offset best.len (best.len < limit here — a
      // limit-length match breaks out below — so the loads are in bounds).
      // A rejected candidate's match length is <= best.len, which the full
      // comparison would have discarded anyway: the parse is unchanged.
      if (best.len != 0 && base[candidate + best.len] != base[pos + best.len]) {
        candidate = prev_[candidate];
        continue;
      }
      const std::uint32_t len = match_length(base + candidate, base + pos,
                                             limit);
      if (len >= params_.min_match && len > best.len) {
        best.len = len;
        best.offset = pos - candidate;
        if (len >= limit) break;
      }
      candidate = prev_[candidate];
    }
    return best;
  }

  /// Register position `pos` in the hash chains.
  void insert(std::uint32_t pos) {
    if (pos + params_.min_match > data_.size()) return;
    const std::uint32_t h = hash_at(data_.data() + pos, params_.min_match);
    prev_[pos] = head_[h];
    head_[h] = pos;
  }

 private:
  static std::vector<std::uint32_t>& t_head() {
    static thread_local std::vector<std::uint32_t> head;
    return head;
  }
  static std::vector<std::uint32_t>& t_prev() {
    static thread_local std::vector<std::uint32_t> prev;
    return prev;
  }

  ByteSpan data_;
  const LzParams& params_;
  std::vector<std::uint32_t>& head_;
  std::vector<std::uint32_t>& prev_;
};

}  // namespace

std::vector<LzSequence> lz77_parse(ByteSpan data, const LzParams& params) {
  std::vector<LzSequence> sequences;
  lz77_parse(data, params, sequences);
  return sequences;
}

void lz77_parse(ByteSpan data, const LzParams& params,
                std::vector<LzSequence>& sequences) {
  if (params.min_match < 3)
    throw InvalidArgument("lz77_parse: min_match must be >= 3");
  sequences.clear();
  if (data.empty()) return;

  MatchFinder finder(data, params);
  const std::uint32_t size = static_cast<std::uint32_t>(data.size());
  std::uint32_t pos = 0;
  std::uint32_t literal_start = 0;

  while (pos < size) {
    MatchFinder::Match match = finder.find(pos);
    if (match.len == 0) {
      finder.insert(pos);
      ++pos;
      continue;
    }
    if (params.lazy && pos + 1 < size) {
      // One-step lazy evaluation: if the next position has a strictly better
      // match, emit this byte as a literal instead.
      const MatchFinder::Match next = finder.find(pos + 1);
      if (next.len > match.len + 1) {
        finder.insert(pos);
        ++pos;
        match = next;
        // Fall through with pos advanced; re-check lazily only once.
      }
    }
    sequences.push_back(LzSequence{literal_start, pos - literal_start,
                                   match.len, match.offset});
    const std::uint32_t match_end = pos + match.len;
    while (pos < match_end) {
      finder.insert(pos);
      ++pos;
    }
    literal_start = pos;
  }
  if (literal_start < size || sequences.empty()) {
    sequences.push_back(LzSequence{literal_start, size - literal_start, 0, 0});
  }
}

Bytes lz77_reconstruct(ByteSpan source_literals,
                       const std::vector<LzSequence>& sequences,
                       std::size_t expected_size) {
  Bytes out;
  out.reserve(expected_size);
  for (const LzSequence& seq : sequences) {
    if (seq.literal_start + seq.literal_len > source_literals.size())
      throw CorruptStream("lz77_reconstruct: literal range out of bounds");
    out.insert(out.end(),
               source_literals.begin() + seq.literal_start,
               source_literals.begin() + seq.literal_start + seq.literal_len);
    if (seq.match_len > 0) {
      if (seq.match_offset == 0 || seq.match_offset > out.size())
        throw CorruptStream("lz77_reconstruct: bad match offset");
      std::size_t from = out.size() - seq.match_offset;
      for (std::uint32_t i = 0; i < seq.match_len; ++i)
        out.push_back(out[from + i]);  // byte-wise: overlapping matches OK
    }
  }
  if (out.size() != expected_size)
    throw CorruptStream("lz77_reconstruct: size mismatch");
  return out;
}

Bytes shuffle_bytes(ByteSpan data, std::size_t element_size) {
  if (element_size == 0 || data.size() % element_size != 0)
    throw InvalidArgument("shuffle_bytes: size not divisible by element size");
  const std::size_t count = data.size() / element_size;
  Bytes out(data.size());
  for (std::size_t j = 0; j < element_size; ++j)
    for (std::size_t i = 0; i < count; ++i)
      out[j * count + i] = data[i * element_size + j];
  return out;
}

Bytes unshuffle_bytes(ByteSpan data, std::size_t element_size) {
  if (element_size == 0 || data.size() % element_size != 0)
    throw InvalidArgument("unshuffle_bytes: size not divisible by element size");
  const std::size_t count = data.size() / element_size;
  Bytes out(data.size());
  for (std::size_t j = 0; j < element_size; ++j)
    for (std::size_t i = 0; i < count; ++i)
      out[i * element_size + j] = data[j * count + i];
  return out;
}

}  // namespace fedsz::lossless

// Canonical, length-limited Huffman coding over 32-bit symbols.
//
// Used in two places, mirroring the paper's compressor stack:
//  - the SZ2/SZ3 lossy codecs entropy-code their quantization integers with
//    Huffman (Section II-A),
//  - the deflate- and zstd-like lossless codecs entropy-code LZ token streams.
//
// Codes are canonical (assigned by (length, symbol) order) and limited to
// kMaxCodeLength bits so the decoder can walk lengths with bounded state.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/bitstream.hpp"
#include "util/bytebuffer.hpp"
#include "util/common.hpp"

namespace fedsz::lossless {

class HuffmanCodebook {
 public:
  static constexpr unsigned kMaxCodeLength = 16;

  /// Build from (symbol, count) pairs; counts must be > 0 and symbols
  /// distinct. At most 65536 distinct symbols (the 16-bit length limit is
  /// infeasible beyond that).
  static HuffmanCodebook from_frequencies(
      const std::vector<std::pair<std::uint32_t, std::uint64_t>>& freqs);

  /// Count symbols then build.
  static HuffmanCodebook from_symbols(std::span<const std::uint32_t> symbols);

  /// Serialize the (symbol, code length) table.
  void write_table(ByteWriter& out) const;
  static HuffmanCodebook read_table(ByteReader& in);

  void encode(BitWriter& out, std::uint32_t symbol) const;
  std::uint32_t decode(BitReader& in) const;

  std::size_t distinct_symbols() const { return symbols_.size(); }
  /// Code length in bits for a symbol (0 if the symbol is not in the book).
  unsigned code_length(std::uint32_t symbol) const;

 private:
  void build_canonical(
      std::vector<std::pair<std::uint32_t, unsigned>> symbol_lengths);

  // Encoder side: symbol -> (canonical code, length).
  std::unordered_map<std::uint32_t, std::pair<std::uint32_t, unsigned>> enc_;
  // Decoder side: canonical layout.
  std::vector<std::uint32_t> symbols_;  // sorted by (length, symbol)
  std::array<std::uint32_t, kMaxCodeLength + 1> count_{};       // per length
  std::array<std::uint32_t, kMaxCodeLength + 1> first_code_{};  // per length
  std::array<std::uint32_t, kMaxCodeLength + 1> first_index_{};
};

/// Self-contained one-shot encode: table header + symbol count + bitstream.
Bytes huffman_encode(std::span<const std::uint32_t> symbols);
std::vector<std::uint32_t> huffman_decode(ByteSpan data);

}  // namespace fedsz::lossless

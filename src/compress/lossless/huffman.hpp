// Canonical, length-limited Huffman coding over 32-bit symbols.
//
// Used in two places, mirroring the paper's compressor stack:
//  - the SZ2/SZ3 lossy codecs entropy-code their quantization integers with
//    Huffman (Section II-A),
//  - the deflate- and zstd-like lossless codecs entropy-code LZ token streams.
//
// Codes are canonical (assigned by (length, symbol) order) and limited to
// kMaxCodeLength bits so the decoder can walk lengths with bounded state.
//
// Hot-path layout: the encoder keeps a dense symbol-indexed table of packed
// (bit-reversed code, length) entries, so emitting a symbol is one table
// load plus one buffered BitWriter::write — not a hash lookup and a
// bit-at-a-time loop. The decoder fronts the canonical walk with a
// root-indexed table over the next kDecodeRootBits stream bits. Both
// produce streams byte-identical to the historical bitwise coder.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/bitstream.hpp"
#include "util/bytebuffer.hpp"
#include "util/common.hpp"

namespace fedsz::lossless {

struct HuffmanWorkspace;

class HuffmanCodebook {
 public:
  static constexpr unsigned kMaxCodeLength = 16;
  /// Codes no longer than this decode with a single table lookup; longer
  /// ones fall back to the canonical length walk.
  static constexpr unsigned kDecodeRootBits = 11;
  /// Symbols below this get dense (symbol-indexed) encoder tables.
  static constexpr std::uint32_t kDenseSymbolLimit = 1u << 16;

  /// Build from (symbol, count) pairs; counts must be > 0 and symbols
  /// distinct. At most 65536 distinct symbols (the 16-bit length limit is
  /// infeasible beyond that).
  static HuffmanCodebook from_frequencies(
      const std::vector<std::pair<std::uint32_t, std::uint64_t>>& freqs);

  /// Count symbols then build.
  static HuffmanCodebook from_symbols(std::span<const std::uint32_t> symbols);

  /// In-place rebuilds drawing every construction buffer (frequency
  /// counts, tree nodes, heap, length repair, canonical assignment) from
  /// `ws`, and reusing THIS book's table capacity. Byte-identical codes to
  /// the from_* factories; zero steady-state allocations once the
  /// workspace has grown to the working-set size.
  void rebuild_from_frequencies(
      const std::vector<std::pair<std::uint32_t, std::uint64_t>>& freqs,
      HuffmanWorkspace& ws);
  void rebuild_from_symbols(std::span<const std::uint32_t> symbols,
                            HuffmanWorkspace& ws);

  /// Serialize the (symbol, code length) table.
  void write_table(ByteWriter& out) const;
  static HuffmanCodebook read_table(ByteReader& in);

  void encode(BitWriter& out, std::uint32_t symbol) const;
  /// Encode a whole block — the dense-table inner loop the codecs use.
  void encode_all(std::span<const std::uint32_t> symbols,
                  BitWriter& out) const;
  std::uint32_t decode(BitReader& in) const;

  std::size_t distinct_symbols() const { return symbols_.size(); }
  /// Code length in bits for a symbol (0 if the symbol is not in the book).
  unsigned code_length(std::uint32_t symbol) const;

 private:
  void build_canonical(
      std::vector<std::pair<std::uint32_t, unsigned>> symbol_lengths);
  /// The canonical build proper: sorts `symbol_lengths` in place and
  /// rebuilds every table reusing its capacity.
  void build_canonical_inplace(
      std::vector<std::pair<std::uint32_t, unsigned>>& symbol_lengths);
  void build_decode_table();
  /// Packed (bit_reverse(code, len) << 5 | len) for `symbol`, 0 if absent.
  std::uint32_t find_entry(std::uint32_t symbol) const;

  // Encoder side: packed entries, dense by symbol value when small enough,
  // otherwise sorted (symbol, packed) pairs searched by binary search.
  std::vector<std::uint32_t> enc_dense_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> enc_sparse_;
  // Decoder side: canonical layout.
  std::vector<std::uint32_t> symbols_;  // sorted by (length, symbol)
  std::array<std::uint32_t, kMaxCodeLength + 1> count_{};       // per length
  std::array<std::uint32_t, kMaxCodeLength + 1> first_code_{};  // per length
  std::array<std::uint32_t, kMaxCodeLength + 1> first_index_{};
  // Root decode table: next kDecodeRootBits stream bits -> (symbol, len);
  // len 0 marks "no short code here" (long code or corrupt prefix).
  struct DecEntry {
    std::uint32_t symbol;
    std::uint8_t len;
  };
  std::vector<DecEntry> dec_table_;
  unsigned root_bits_ = 0;
};

/// Self-contained one-shot encode: table header + symbol count + bitstream.
Bytes huffman_encode(std::span<const std::uint32_t> symbols);
std::vector<std::uint32_t> huffman_decode(ByteSpan data);

/// Reusable codebook-construction scratch: the tree nodes, min-heap,
/// frequency/length vectors, and a persistent codebook whose tables are
/// rebuilt in place. One per encode arena (a codebook build otherwise
/// costs ~10 allocations per chunk, and the chunked pipeline builds one
/// per chunk per round).
struct HuffmanWorkspace {
  struct TreeNode {
    std::uint64_t weight = 0;
    int left = -1;  // node indices, -1 for leaves
    int right = -1;
    std::uint32_t symbol = 0;  // valid for leaves
  };
  std::vector<std::pair<std::uint32_t, std::uint64_t>> freqs;
  std::vector<std::uint64_t> counts;  // dense symbol-indexed counting
  std::vector<unsigned> lengths;
  std::vector<TreeNode> nodes;
  std::vector<std::pair<std::uint64_t, int>> heap;  // (weight, node index)
  std::vector<std::pair<int, unsigned>> stack;      // DFS depth assignment
  std::vector<std::size_t> order;                   // length-limit repair
  std::vector<std::pair<std::uint32_t, unsigned>> symbol_lengths;
  HuffmanCodebook book;

  std::size_t capacity_bytes() const;
};

/// Arena variants: append the identical encoding to `out` using `bits` as
/// reusable bit-packing scratch / fill a caller-owned symbol buffer. These
/// let steady-state encode/decode run without fresh allocations once the
/// buffers have grown to their working size.
void huffman_encode(std::span<const std::uint32_t> symbols, ByteWriter& out,
                    BitWriter& bits);
/// Fully pooled variant: additionally draws the codebook build from `ws`.
void huffman_encode(std::span<const std::uint32_t> symbols, ByteWriter& out,
                    BitWriter& bits, HuffmanWorkspace& ws);
void huffman_decode(ByteSpan data, std::vector<std::uint32_t>& out);

}  // namespace fedsz::lossless

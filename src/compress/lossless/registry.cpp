#include "compress/lossless/lossless.hpp"

namespace fedsz::lossless {

// Singleton accessors defined in the codec translation units.
const LosslessCodec& blosclz_codec_instance();
const LosslessCodec& zlib_codec_instance();
const LosslessCodec& gzip_codec_instance();
const LosslessCodec& zstd_codec_instance();
const LosslessCodec& xz_codec_instance();

void LosslessCodec::compress_into(ByteSpan data, Bytes& out) const {
  const Bytes fresh = compress(data);
  out.assign(fresh.begin(), fresh.end());
}

const LosslessCodec& lossless_codec(LosslessId id) {
  switch (id) {
    case LosslessId::kBloscLz:
      return blosclz_codec_instance();
    case LosslessId::kZlib:
      return zlib_codec_instance();
    case LosslessId::kZstd:
      return zstd_codec_instance();
    case LosslessId::kGzip:
      return gzip_codec_instance();
    case LosslessId::kXz:
      return xz_codec_instance();
  }
  throw InvalidArgument("lossless_codec: unknown codec id");
}

const LosslessCodec& lossless_codec(const std::string& name) {
  for (const LosslessCodec* codec : all_lossless_codecs())
    if (codec->name() == name) return *codec;
  throw InvalidArgument("lossless_codec: unknown codec '" + name + "'");
}

std::vector<const LosslessCodec*> all_lossless_codecs() {
  return {&blosclz_codec_instance(), &zlib_codec_instance(),
          &zstd_codec_instance(), &gzip_codec_instance(),
          &xz_codec_instance()};
}

bool is_lossless_id(std::uint8_t raw) {
  switch (static_cast<LosslessId>(raw)) {
    case LosslessId::kBloscLz:
    case LosslessId::kZlib:
    case LosslessId::kZstd:
    case LosslessId::kGzip:
    case LosslessId::kXz:
      return true;
  }
  return false;
}

}  // namespace fedsz::lossless

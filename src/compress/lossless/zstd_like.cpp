// zstd analogue: LZ77 with a large (1 MiB) window and lazy matching, token
// stream split into independent streams (literal bytes; literal-length,
// match-length and offset bucket codes), each entropy-coded with its own
// canonical Huffman table, extra bits in a shared raw bitstream. This is
// zstd's architectural split (literals vs sequences, per-stream entropy
// tables), trading a little speed for ratio over deflate.
#include <algorithm>
#include <bit>

#include "compress/lossless/huffman.hpp"
#include "compress/lossless/lossless.hpp"
#include "compress/lossless/lz77.hpp"
#include "util/bitstream.hpp"
#include "util/bytebuffer.hpp"

namespace fedsz::lossless {

namespace {

constexpr std::uint8_t kModeRaw = 0;
constexpr std::uint8_t kModeCompressed = 1;
constexpr unsigned kMinMatch = 4;

struct CodedValue {
  std::uint32_t code;
  unsigned extra_bits;
  std::uint32_t extra;
};

/// Values < 16 code as themselves; larger values bucket by bit width
/// (code = 12 + bit_width, which starts at 16 and so never collides).
CodedValue value_code(std::uint32_t v) {
  if (v < 16) return {v, 0, 0};
  const unsigned k = std::bit_width(v) - 1;  // v >= 16 -> k >= 4
  return {12 + k, k, v - (1u << k)};
}

std::uint32_t decode_value(std::uint32_t code, BitReader& bits) {
  if (code < 16) return code;
  const unsigned k = code - 12;
  if (k >= 32) throw CorruptStream("zstd-like: bad value code");
  return (1u << k) + static_cast<std::uint32_t>(bits.read(k));
}

class ZstdLikeCodec final : public LosslessCodec {
 public:
  LosslessId id() const override { return LosslessId::kZstd; }
  std::string name() const override { return "zstd"; }

  Bytes compress(ByteSpan data) const override {
    ByteWriter w;
    w.put_varint(data.size());
    if (data.empty()) {
      w.put_u8(kModeRaw);
      return w.finish();
    }
    LzParams params;
    params.window_log = 20;  // 1 MiB window
    params.min_match = kMinMatch;
    params.max_chain = 64;
    params.lazy = true;
    const auto seqs = lz77_parse(data, params);

    // Split into streams.
    std::vector<std::uint32_t> literal_syms;
    std::vector<std::uint32_t> ll_codes, ml_codes, of_codes;
    BitWriter extras;
    std::uint64_t trailing_literals = 0;
    for (const LzSequence& seq : seqs) {
      for (std::uint32_t i = 0; i < seq.literal_len; ++i)
        literal_syms.push_back(data[seq.literal_start + i]);
      if (seq.match_len == 0) {
        trailing_literals = seq.literal_len;
        continue;
      }
      const CodedValue ll = value_code(seq.literal_len);
      const CodedValue ml = value_code(seq.match_len - kMinMatch);
      const CodedValue of = value_code(seq.match_offset);
      ll_codes.push_back(ll.code);
      ml_codes.push_back(ml.code);
      of_codes.push_back(of.code);
      extras.write(ll.extra, ll.extra_bits);
      extras.write(ml.extra, ml.extra_bits);
      extras.write(of.extra, of.extra_bits);
    }

    ByteWriter body;
    body.put_varint(trailing_literals);
    Bytes lit_block = huffman_encode(literal_syms);
    body.put_blob({lit_block.data(), lit_block.size()});
    Bytes ll_block = huffman_encode(ll_codes);
    body.put_blob({ll_block.data(), ll_block.size()});
    Bytes ml_block = huffman_encode(ml_codes);
    body.put_blob({ml_block.data(), ml_block.size()});
    Bytes of_block = huffman_encode(of_codes);
    body.put_blob({of_block.data(), of_block.size()});
    body.put_blob(extras.finish());

    const Bytes body_bytes = body.finish();
    if (body_bytes.size() >= data.size()) {
      w.put_u8(kModeRaw);
      w.put_bytes(data);
    } else {
      w.put_u8(kModeCompressed);
      w.put_bytes({body_bytes.data(), body_bytes.size()});
    }
    return w.finish();
  }

  Bytes decompress(ByteSpan data) const override {
    ByteReader r(data);
    const auto raw_size = static_cast<std::size_t>(r.get_varint());
    const std::uint8_t mode = r.get_u8();
    if (mode == kModeRaw) {
      ByteSpan raw = r.get_bytes(raw_size);
      return Bytes(raw.begin(), raw.end());
    }
    if (mode != kModeCompressed)
      throw CorruptStream("zstd-like: unknown mode byte");
    const std::uint64_t trailing_literals = r.get_varint();
    const Bytes lit_block = r.get_blob();
    const Bytes ll_block = r.get_blob();
    const Bytes ml_block = r.get_blob();
    const Bytes of_block = r.get_blob();
    const Bytes extras_bytes = r.get_blob();

    const auto literals = huffman_decode({lit_block.data(), lit_block.size()});
    const auto ll_codes = huffman_decode({ll_block.data(), ll_block.size()});
    const auto ml_codes = huffman_decode({ml_block.data(), ml_block.size()});
    const auto of_codes = huffman_decode({of_block.data(), of_block.size()});
    if (ll_codes.size() != ml_codes.size() ||
        ll_codes.size() != of_codes.size())
      throw CorruptStream("zstd-like: sequence stream length mismatch");
    BitReader extras({extras_bytes.data(), extras_bytes.size()});

    Bytes out;
    out.reserve(raw_size);
    std::size_t lit_pos = 0;
    auto take_literals = [&](std::uint64_t n) {
      if (lit_pos + n > literals.size())
        throw CorruptStream("zstd-like: literal stream exhausted");
      for (std::uint64_t i = 0; i < n; ++i)
        out.push_back(static_cast<std::uint8_t>(literals[lit_pos++]));
    };
    for (std::size_t s = 0; s < ll_codes.size(); ++s) {
      const std::uint32_t lit_len = decode_value(ll_codes[s], extras);
      const std::uint32_t match_len =
          decode_value(ml_codes[s], extras) + kMinMatch;
      const std::uint32_t offset = decode_value(of_codes[s], extras);
      take_literals(lit_len);
      if (offset == 0 || offset > out.size())
        throw CorruptStream("zstd-like: bad offset");
      const std::size_t from = out.size() - offset;
      for (std::uint32_t i = 0; i < match_len; ++i)
        out.push_back(out[from + i]);
    }
    take_literals(trailing_literals);
    if (out.size() != raw_size) throw CorruptStream("zstd-like: size mismatch");
    return out;
  }
};

}  // namespace

const LosslessCodec& zstd_codec_instance() {
  static const ZstdLikeCodec codec;
  return codec;
}

}  // namespace fedsz::lossless

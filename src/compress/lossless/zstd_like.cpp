// zstd analogue: LZ77 with a large (1 MiB) window and lazy matching, token
// stream split into independent streams (literal bytes; literal-length,
// match-length and offset bucket codes), each entropy-coded with its own
// canonical Huffman table, extra bits in a shared raw bitstream. This is
// zstd's architectural split (literals vs sequences, per-stream entropy
// tables), trading a little speed for ratio over deflate.
#include <algorithm>
#include <bit>

#include "compress/lossless/huffman.hpp"
#include "compress/lossless/lossless.hpp"
#include "compress/lossless/lz77.hpp"
#include "util/bitstream.hpp"
#include "util/bytebuffer.hpp"

namespace fedsz::lossless {

namespace {

constexpr std::uint8_t kModeRaw = 0;
constexpr std::uint8_t kModeCompressed = 1;
constexpr unsigned kMinMatch = 4;

struct CodedValue {
  std::uint32_t code;
  unsigned extra_bits;
  std::uint32_t extra;
};

/// Values < 16 code as themselves; larger values bucket by bit width
/// (code = 12 + bit_width, which starts at 16 and so never collides).
CodedValue value_code(std::uint32_t v) {
  if (v < 16) return {v, 0, 0};
  const unsigned k = std::bit_width(v) - 1;  // v >= 16 -> k >= 4
  return {12 + k, k, v - (1u << k)};
}

std::uint32_t decode_value(std::uint32_t code, BitReader& bits) {
  if (code < 16) return code;
  const unsigned k = code - 12;
  if (k >= 32) throw CorruptStream("zstd-like: bad value code");
  return (1u << k) + static_cast<std::uint32_t>(bits.read(k));
}

// Per-thread working buffers, reset (not freed) between compress calls —
// steady-state encode reuses the same heap blocks across chunks and rounds.
struct ZstdScratch {
  std::vector<LzSequence> seqs;
  std::vector<std::uint32_t> literal_syms, ll_codes, ml_codes, of_codes;
  BitWriter extras;
  BitWriter huff_bits;    // bit-packing scratch shared by the four streams
  ByteWriter huff_block;  // one entropy-coded stream, before length-prefixing
  HuffmanWorkspace huff;  // pooled codebook-construction scratch
  ByteWriter body;
  ByteWriter framed;      // full frame for the compress_into path
};

ZstdScratch& t_scratch() {
  static thread_local ZstdScratch scratch;
  return scratch;
}

class ZstdLikeCodec final : public LosslessCodec {
 public:
  LosslessId id() const override { return LosslessId::kZstd; }
  std::string name() const override { return "zstd"; }

  Bytes compress(ByteSpan data) const override {
    ByteWriter w;
    encode_frame(data, w);
    return w.finish();
  }

  void compress_into(ByteSpan data, Bytes& out) const override {
    ByteWriter& w = t_scratch().framed;
    w.reset();
    encode_frame(data, w);
    const ByteSpan frame = w.view();
    out.assign(frame.begin(), frame.end());
  }

 private:
  void encode_frame(ByteSpan data, ByteWriter& w) const {
    w.put_varint(data.size());
    if (data.empty()) {
      w.put_u8(kModeRaw);
      return;
    }
    LzParams params;
    params.window_log = 20;  // 1 MiB window
    params.min_match = kMinMatch;
    params.max_chain = 64;
    params.lazy = true;
    ZstdScratch& s = t_scratch();
    lz77_parse(data, params, s.seqs);

    // Split into streams.
    std::vector<std::uint32_t>& literal_syms = s.literal_syms;
    std::vector<std::uint32_t>& ll_codes = s.ll_codes;
    std::vector<std::uint32_t>& ml_codes = s.ml_codes;
    std::vector<std::uint32_t>& of_codes = s.of_codes;
    literal_syms.clear();
    ll_codes.clear();
    ml_codes.clear();
    of_codes.clear();
    BitWriter& extras = s.extras;
    extras.reset();
    std::uint64_t trailing_literals = 0;
    for (const LzSequence& seq : s.seqs) {
      const std::size_t base = literal_syms.size();
      literal_syms.resize(base + seq.literal_len);
      const std::uint8_t* lit = data.data() + seq.literal_start;
      for (std::uint32_t i = 0; i < seq.literal_len; ++i)
        literal_syms[base + i] = lit[i];
      if (seq.match_len == 0) {
        trailing_literals = seq.literal_len;
        continue;
      }
      const CodedValue ll = value_code(seq.literal_len);
      const CodedValue ml = value_code(seq.match_len - kMinMatch);
      const CodedValue of = value_code(seq.match_offset);
      ll_codes.push_back(ll.code);
      ml_codes.push_back(ml.code);
      of_codes.push_back(of.code);
      extras.write(ll.extra, ll.extra_bits);
      extras.write(ml.extra, ml.extra_bits);
      extras.write(of.extra, of.extra_bits);
    }

    ByteWriter& body = s.body;
    body.reset();
    body.put_varint(trailing_literals);
    for (const auto* stream : {&literal_syms, &ll_codes, &ml_codes,
                               &of_codes}) {
      s.huff_block.reset();
      huffman_encode(*stream, s.huff_block, s.huff_bits, s.huff);
      body.put_blob(s.huff_block.view());
    }
    body.put_blob(extras.finish_view());

    const ByteSpan body_bytes = body.view();
    if (body_bytes.size() >= data.size()) {
      w.put_u8(kModeRaw);
      w.put_bytes(data);
    } else {
      w.put_u8(kModeCompressed);
      w.put_bytes(body_bytes);
    }
  }

 public:
  Bytes decompress(ByteSpan data) const override {
    ByteReader r(data);
    const auto raw_size = static_cast<std::size_t>(r.get_varint());
    const std::uint8_t mode = r.get_u8();
    if (mode == kModeRaw) {
      ByteSpan raw = r.get_bytes(raw_size);
      return Bytes(raw.begin(), raw.end());
    }
    if (mode != kModeCompressed)
      throw CorruptStream("zstd-like: unknown mode byte");
    const std::uint64_t trailing_literals = r.get_varint();
    const ByteSpan lit_block = r.get_blob_view();
    const ByteSpan ll_block = r.get_blob_view();
    const ByteSpan ml_block = r.get_blob_view();
    const ByteSpan of_block = r.get_blob_view();
    const ByteSpan extras_bytes = r.get_blob_view();

    const auto literals = huffman_decode(lit_block);
    const auto ll_codes = huffman_decode(ll_block);
    const auto ml_codes = huffman_decode(ml_block);
    const auto of_codes = huffman_decode(of_block);
    if (ll_codes.size() != ml_codes.size() ||
        ll_codes.size() != of_codes.size())
      throw CorruptStream("zstd-like: sequence stream length mismatch");
    BitReader extras(extras_bytes);

    Bytes out;
    out.reserve(raw_size);
    std::size_t lit_pos = 0;
    auto take_literals = [&](std::uint64_t n) {
      if (lit_pos + n > literals.size())
        throw CorruptStream("zstd-like: literal stream exhausted");
      for (std::uint64_t i = 0; i < n; ++i)
        out.push_back(static_cast<std::uint8_t>(literals[lit_pos++]));
    };
    for (std::size_t s = 0; s < ll_codes.size(); ++s) {
      const std::uint32_t lit_len = decode_value(ll_codes[s], extras);
      const std::uint32_t match_len =
          decode_value(ml_codes[s], extras) + kMinMatch;
      const std::uint32_t offset = decode_value(of_codes[s], extras);
      take_literals(lit_len);
      if (offset == 0 || offset > out.size())
        throw CorruptStream("zstd-like: bad offset");
      const std::size_t from = out.size() - offset;
      for (std::uint32_t i = 0; i < match_len; ++i)
        out.push_back(out[from + i]);
    }
    take_literals(trailing_literals);
    if (out.size() != raw_size) throw CorruptStream("zstd-like: size mismatch");
    return out;
  }
};

}  // namespace

const LosslessCodec& zstd_codec_instance() {
  static const ZstdLikeCodec codec;
  return codec;
}

}  // namespace fedsz::lossless

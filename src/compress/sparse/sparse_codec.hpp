// Adaptive sparse-quantization codec (FedSparQ-style, arXiv:2511.05591).
//
// Each tensor is compressed in three stages:
//
//   1. Threshold. A keep-mask is derived from per-tensor magnitude
//      statistics: with sparsity = 0 (adaptive) the threshold is
//      mean(|x|) + stddev(|x|); with an explicit sparsity fraction s the
//      top (1 - s) * numel elements by magnitude survive (deterministic
//      tie-break by index). Dropped elements decode to exactly 0.0f, which
//      is what lets the error-feedback accumulator recover them on later
//      rounds.
//   2. Quantize. Survivors are uniformly quantized against the tensor's
//      resolved error bound eps with step = 2 * eps, then bit-packed at
//      the adaptive width bit_width(max_code). An explicit bits= cap can
//      only tighten the step (never loosen it past the bound), so the
//      |decoded - original| <= eps guarantee holds for every survivor
//      regardless of the requested width. Degenerate ranges fall back to
//      verbatim f32 survivors (bits tag 32) or a single shared value
//      (bits tag 0).
//   3. Entropy. The packed survivor stream runs through one of the
//      existing lossless backends (id embedded in the payload); the mask
//      is stored as either an LSB-first bitmap or delta varint indices,
//      whichever is smaller — subject to the decompression-bomb floor
//      below so a tiny index mask can never under-declare a huge tensor.
//
// Payloads are self-contained (element count, eps, mask encoding, bit
// width, lossless id are all embedded) and fully validated on decode:
// mask popcount, index monotonicity, packed-stream length, and the
// element-count-vs-payload-size plausibility guard all throw CorruptStream
// before any large allocation.
#pragma once

#include <cstdint>
#include <vector>

#include "compress/lossless/lossless.hpp"
#include "util/common.hpp"

namespace fedsz::sparse {

/// Decompression-bomb floor shared with the container: a payload of P
/// bytes may declare at most P * kMaxElementsPerPayloadByte elements.
/// The encoder keeps every emitted payload above this floor (falling back
/// to the bitmap mask, whose size is proportional to numel); the decoder
/// and the v3 container reject anything below it before allocating.
constexpr std::uint64_t kMaxElementsPerPayloadByte = std::uint64_t{1} << 13;

/// Per-tensor knobs carried by a TensorPlan (and the codec_spec keys
/// sparsity= / bits=).
struct SparseParams {
  /// Fraction of elements to drop, in (0, 1). 0 selects the adaptive
  /// mean + stddev magnitude threshold.
  double sparsity = 0.0;
  /// Cap on the survivor quantization bit width, 1..31. 0 selects the
  /// bound-adaptive width. The cap never loosens the error bound.
  unsigned bits = 0;

  /// Throws InvalidArgument on out-of-range values.
  void validate() const;
};

/// Encoder-side tallies surfaced into CompressionStats.
struct SparseEncodeInfo {
  std::size_t kept = 0;  // survivors actually encoded
};

/// Stateless; all working storage lives in thread-local scratch, so the
/// singleton is shared across pool workers and steady-state encodes
/// perform no heap allocation.
class SparseQuantCodec {
 public:
  std::string name() const { return "sparse"; }

  /// Encode `data` against resolved bound `eps` (> 0), routing the packed
  /// survivor stream through `survivors`. `out` is replaced (capacity
  /// reused).
  SparseEncodeInfo compress_into(FloatSpan data, double eps,
                                 const SparseParams& params,
                                 const lossless::LosslessCodec& survivors,
                                 Bytes& out) const;

  /// Convenience allocating wrapper around compress_into.
  Bytes compress(FloatSpan data, double eps, const SparseParams& params,
                 const lossless::LosslessCodec& survivors) const;

  /// Decode a self-contained payload. Throws CorruptStream on any
  /// malformed field; never allocates more than the payload plausibly
  /// declares.
  std::vector<float> decompress(ByteSpan payload) const;
};

/// The shared stateless instance.
const SparseQuantCodec& sparse_codec();

}  // namespace fedsz::sparse

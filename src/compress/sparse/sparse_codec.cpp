#include "compress/sparse/sparse_codec.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>

#include "compress/lossy/lossy.hpp"
#include "util/bitstream.hpp"
#include "util/bytebuffer.hpp"

namespace fedsz::sparse {

namespace {

/// Per-thread working storage: reset, never freed, so steady-state encodes
/// perform no heap allocation (the ZstdScratch pattern).
struct SparseScratch {
  std::vector<float> mags;           // |x| copy for the top-k selection
  std::vector<std::uint32_t> indices;
  std::vector<float> values;         // gathered survivors, encode order
  std::vector<std::uint32_t> codes;  // quantized survivors
  BitWriter bits;                    // packed survivor codes
  Bytes compressed;                  // lossless-compressed survivor stream
  ByteWriter frame;
};

SparseScratch& t_scratch() {
  static thread_local SparseScratch scratch;
  return scratch;
}

std::size_t varint_len(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Survivor selection into `indices` (ascending). sparsity = 0 uses the
/// adaptive mean + stddev magnitude threshold; an explicit fraction keeps
/// the top (1 - sparsity) * numel magnitudes with deterministic index-order
/// tie-breaking, so the mask is a pure function of the tensor.
void select_survivors(FloatSpan data, double sparsity, SparseScratch& s) {
  s.indices.clear();
  const std::size_t n = data.size();
  if (n == 0) return;
  if (sparsity <= 0.0) {
    double sum = 0.0, sum_sq = 0.0;
    for (const float v : data) {
      const double m = std::fabs(static_cast<double>(v));
      sum += m;
      sum_sq += m * m;
    }
    const double mean = sum / static_cast<double>(n);
    const double var =
        std::max(0.0, sum_sq / static_cast<double>(n) - mean * mean);
    const double tau = mean + std::sqrt(var);
    for (std::size_t i = 0; i < n; ++i)
      if (std::fabs(static_cast<double>(data[i])) > tau)
        s.indices.push_back(static_cast<std::uint32_t>(i));
    return;
  }
  std::size_t k = static_cast<std::size_t>(
      std::llround((1.0 - sparsity) * static_cast<double>(n)));
  k = std::clamp<std::size_t>(k, 1, n);
  s.mags.resize(n);
  for (std::size_t i = 0; i < n; ++i) s.mags[i] = std::fabs(data[i]);
  std::nth_element(s.mags.begin(), s.mags.begin() + (k - 1), s.mags.end(),
                   std::greater<float>());
  const float tau = s.mags[k - 1];  // k-th largest magnitude
  for (std::size_t i = 0; i < n && s.indices.size() < k; ++i)
    if (std::fabs(data[i]) > tau)
      s.indices.push_back(static_cast<std::uint32_t>(i));
  for (std::size_t i = 0; i < n && s.indices.size() < k; ++i)
    if (std::fabs(data[i]) == tau)
      s.indices.push_back(static_cast<std::uint32_t>(i));
  std::sort(s.indices.begin(), s.indices.end());
}

}  // namespace

void SparseParams::validate() const {
  if (!std::isfinite(sparsity) || sparsity < 0.0 || sparsity >= 1.0)
    throw InvalidArgument("sparse: sparsity must be in [0, 1)");
  if (bits > 31)
    throw InvalidArgument("sparse: bits must be 0 (adaptive) or 1..31");
}

SparseEncodeInfo SparseQuantCodec::compress_into(
    FloatSpan data, double eps, const SparseParams& params,
    const lossless::LosslessCodec& survivors, Bytes& out) const {
  params.validate();
  if (!(std::isfinite(eps)) || eps <= 0.0)
    throw InvalidArgument("sparse: error bound must be positive and finite");
  if (data.size() > std::numeric_limits<std::uint32_t>::max())
    throw InvalidArgument("sparse: tensor too large for the sparse path");
  lossy::require_finite(data, name());

  SparseScratch& s = t_scratch();
  const std::size_t n = data.size();
  select_survivors(data, params.sparsity, s);
  const std::size_t kept = s.indices.size();

  s.values.resize(kept);
  for (std::size_t j = 0; j < kept; ++j) s.values[j] = data[s.indices[j]];

  // Quantize survivors: step = 2 * eps keeps |decoded - original| <= eps;
  // an explicit bits= cap can only shrink the step further. Pathological
  // ranges (code space past 2^31) fall back to verbatim f32 survivors.
  float lo = 0.0f;
  double step = 0.0;
  unsigned bits_tag = 0;
  s.bits.reset();  // kept == 0 must emit an empty stream, not stale bits
  if (kept > 0) {
    const auto [lo_it, hi_it] = std::minmax_element(s.values.begin(),
                                                    s.values.end());
    lo = *lo_it;
    const double range = static_cast<double>(*hi_it) - static_cast<double>(lo);
    step = 2.0 * eps;
    if (params.bits >= 1 && range > 0.0) {
      const double cap_step =
          range / static_cast<double>((std::uint32_t{1} << params.bits) - 1);
      step = std::min(step, cap_step);
    }
    const double needed = range / step;
    if (!(needed < 2147483646.0)) {
      bits_tag = 32;  // verbatim f32 survivors
    } else {
      s.codes.resize(kept);
      std::uint32_t max_code = 0;
      for (std::size_t j = 0; j < kept; ++j) {
        const double delta = static_cast<double>(s.values[j]) -
                             static_cast<double>(lo);
        const std::uint32_t code =
            static_cast<std::uint32_t>(std::llround(delta / step));
        s.codes[j] = code;
        max_code = std::max(max_code, code);
      }
      bits_tag = static_cast<unsigned>(std::bit_width(max_code));
      for (std::size_t j = 0; j < kept; ++j)
        s.bits.write(s.codes[j], bits_tag);
    }
  }

  ByteSpan packed;
  if (bits_tag == 32) {
    packed = ByteSpan{reinterpret_cast<const std::uint8_t*>(s.values.data()),
                      kept * sizeof(float)};
  } else {
    packed = s.bits.finish_view();
  }
  survivors.compress_into(packed, s.compressed);

  // Mask encoding: delta-varint indices when strictly smaller than the
  // bitmap AND the resulting payload still clears the decompression-bomb
  // floor; the bitmap (numel / 8 bytes) always clears it.
  const std::size_t bitmap_bytes = (n + 7) / 8;
  std::size_t index_bytes = 0;
  for (std::size_t j = 0; j < kept; ++j)
    index_bytes += varint_len(j == 0 ? s.indices[j]
                                     : s.indices[j] - s.indices[j - 1]);
  const std::size_t fixed_bytes =
      varint_len(n) + sizeof(double) + varint_len(kept) + 2 +
      (kept > 0 && bits_tag < 32 ? sizeof(float) + sizeof(double) : 0) + 1 +
      varint_len(packed.size()) + varint_len(s.compressed.size()) +
      s.compressed.size();
  const bool use_indices =
      kept > 0 && index_bytes < bitmap_bytes &&
      n / kMaxElementsPerPayloadByte <= fixed_bytes + index_bytes;

  ByteWriter& w = s.frame;
  w.reset();
  w.put_varint(n);
  w.put_f64(eps);
  w.put_varint(kept);
  w.put_u8(use_indices ? 1 : 0);
  w.put_u8(static_cast<std::uint8_t>(bits_tag));
  if (kept > 0 && bits_tag < 32) {
    w.put_f32(lo);
    w.put_f64(step);
  }
  if (use_indices) {
    for (std::size_t j = 0; j < kept; ++j)
      w.put_varint(j == 0 ? s.indices[j] : s.indices[j] - s.indices[j - 1]);
  } else {
    std::size_t cursor = 0;
    for (std::size_t byte = 0; byte < bitmap_bytes; ++byte) {
      std::uint8_t m = 0;
      while (cursor < kept && s.indices[cursor] / 8 == byte) {
        m |= static_cast<std::uint8_t>(1u << (s.indices[cursor] % 8));
        ++cursor;
      }
      w.put_u8(m);
    }
  }
  w.put_u8(static_cast<std::uint8_t>(survivors.id()));
  w.put_varint(packed.size());
  w.put_blob({s.compressed.data(), s.compressed.size()});

  const ByteSpan frame = w.view();
  out.assign(frame.begin(), frame.end());
  return SparseEncodeInfo{kept};
}

Bytes SparseQuantCodec::compress(FloatSpan data, double eps,
                                 const SparseParams& params,
                                 const lossless::LosslessCodec& survivors)
    const {
  Bytes out;
  compress_into(data, eps, params, survivors, out);
  return out;
}

std::vector<float> SparseQuantCodec::decompress(ByteSpan payload) const {
  ByteReader r(payload);
  const std::uint64_t numel = r.get_varint();
  const double eps = r.get_f64();
  if (!std::isfinite(eps) || eps <= 0.0)
    throw CorruptStream("sparse: bad error bound");
  const std::uint64_t kept = r.get_varint();
  if (kept > numel)
    throw CorruptStream("sparse: survivor count exceeds element count");
  if (numel / kMaxElementsPerPayloadByte > payload.size())
    throw CorruptStream("sparse: implausible element count for payload size");
  const std::uint8_t mask_tag = r.get_u8();
  if (mask_tag > 1) throw CorruptStream("sparse: unknown mask encoding");
  const unsigned bits = r.get_u8();
  if (bits > 32) throw CorruptStream("sparse: bad survivor bit width");
  double lo = 0.0;
  double step = 0.0;
  if (kept > 0 && bits < 32) {
    lo = static_cast<double>(r.get_f32());
    step = r.get_f64();
    if (!std::isfinite(lo) || !std::isfinite(step) || step < 0.0)
      throw CorruptStream("sparse: bad quantization parameters");
  }

  std::vector<float> out;
  std::vector<std::uint32_t> indices;
  try {
    out.assign(numel, 0.0f);
    indices.reserve(kept);
  } catch (const std::bad_alloc&) {
    throw CorruptStream("sparse: tensor too large");
  }

  if (mask_tag == 0) {
    const ByteSpan mask = r.get_bytes((numel + 7) / 8);
    for (std::size_t byte = 0; byte < mask.size(); ++byte) {
      std::uint8_t m = mask[byte];
      while (m != 0) {
        const std::uint64_t idx =
            byte * 8 + static_cast<unsigned>(std::countr_zero(m));
        if (idx >= numel)
          throw CorruptStream("sparse: mask bit past tensor end");
        indices.push_back(static_cast<std::uint32_t>(idx));
        m &= static_cast<std::uint8_t>(m - 1);
      }
    }
    if (indices.size() != kept)
      throw CorruptStream("sparse: mask population != survivor count");
  } else {
    std::uint64_t idx = 0;
    for (std::uint64_t j = 0; j < kept; ++j) {
      const std::uint64_t delta = r.get_varint();
      if (j > 0 && delta == 0)
        throw CorruptStream("sparse: non-increasing survivor index");
      idx = j == 0 ? delta : idx + delta;
      if (idx >= numel)
        throw CorruptStream("sparse: survivor index out of range");
      indices.push_back(static_cast<std::uint32_t>(idx));
    }
  }

  const std::uint8_t lossless_raw = r.get_u8();
  if (!lossless::is_lossless_id(lossless_raw))
    throw CorruptStream("sparse: unknown lossless id");
  const std::uint64_t packed_len = r.get_varint();
  const std::uint64_t expected_len =
      bits == 32 ? kept * sizeof(float)
                 : bits == 0 ? 0 : (kept * bits + 7) / 8;
  if (packed_len != expected_len)
    throw CorruptStream("sparse: packed stream length mismatch");
  const ByteSpan comp = r.get_blob_view();
  if (!r.done()) throw CorruptStream("sparse: trailing bytes");
  const Bytes packed =
      lossless::lossless_codec(static_cast<lossless::LosslessId>(lossless_raw))
          .decompress(comp);
  if (packed.size() != packed_len)
    throw CorruptStream("sparse: survivor stream size mismatch");

  if (bits == 32) {
    for (std::size_t j = 0; j < kept; ++j) {
      float v = 0.0f;
      std::memcpy(&v, packed.data() + j * sizeof(float), sizeof(float));
      out[indices[j]] = v;
    }
  } else if (bits == 0) {
    for (const std::uint32_t idx : indices)
      out[idx] = static_cast<float>(lo);
  } else {
    BitReader br({packed.data(), packed.size()});
    for (std::size_t j = 0; j < kept; ++j) {
      const std::uint64_t code = br.read(bits);
      out[indices[j]] =
          static_cast<float>(lo + static_cast<double>(code) * step);
    }
  }
  return out;
}

const SparseQuantCodec& sparse_codec() {
  static const SparseQuantCodec instance;
  return instance;
}

}  // namespace fedsz::sparse
